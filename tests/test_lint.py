"""The determinism linter: engine, pragmas, each rule, CLI, and the tree.

Every rule gets the same three fixtures — a violating snippet, a clean
sibling, and a pragma-suppressed variant — plus pragma grammar edge cases
and the meta-test that the committed ``src/`` tree lints clean (so a PR
that introduces a violation fails tier-1 before CI even annotates it).
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    DuplicateRuleError,
    LintRegistryError,
    Rule,
    UnknownRuleError,
    Violation,
    available_rules,
    lint_paths,
    lint_source,
    main,
    register_rule,
    rules_for,
    unregister_rule,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

EXPECTED_RULES = {
    "no-global-rng",
    "no-raw-write",
    "no-wallclock",
    "no-sim-wallclock",
    "sorted-iteration",
    "picklable-entry",
    "registry-knob-sync",
    "no-allocating-accumulate",
}


def lint(source: str, **kwargs) -> list[Violation]:
    return lint_source(textwrap.dedent(source), path="snippet.py", **kwargs)


def rule_names(violations: list[Violation]) -> set[str]:
    return {violation.rule for violation in violations}


# ---------------------------------------------------------------------------
# Registry and engine basics.
# ---------------------------------------------------------------------------


class TestRuleRegistry:
    def test_all_rules_registered(self):
        assert EXPECTED_RULES <= set(available_rules())

    def test_profiles(self):
        lib = {rule.name for rule in rules_for("lib")}
        bench = {rule.name for rule in rules_for("bench")}
        assert lib == EXPECTED_RULES
        # bench relaxes the write/wallclock rules and nothing else
        # (no-sim-wallclock / no-allocating-accumulate only ever apply
        # under src/repro/fl and src/repro/tensor respectively, which
        # the bench profile never lints).
        assert bench == EXPECTED_RULES - {
            "no-raw-write", "no-wallclock", "no-sim-wallclock",
            "no-allocating-accumulate",
        }

    def test_unknown_profile_rejected(self):
        with pytest.raises(LintRegistryError, match="unknown lint profile"):
            rules_for("strict")

    def test_explicit_names_bypass_profile(self):
        selected = rules_for("bench", names=["no-raw-write"])
        assert [rule.name for rule in selected] == ["no-raw-write"]

    def test_unknown_rule_name(self):
        with pytest.raises(UnknownRuleError, match="no-such-rule"):
            rules_for("lib", names=["no-such-rule"])

    def test_duplicate_registration_rejected(self):
        rule = Rule(name="scratch-rule", check=lambda context: [])
        register_rule(rule)
        try:
            with pytest.raises(DuplicateRuleError):
                register_rule(rule)
            register_rule(rule, replace=True)  # deliberate replace is fine
        finally:
            unregister_rule("scratch-rule")
        assert "scratch-rule" not in available_rules()

    def test_bad_rule_names_rejected(self):
        for name in ("", "Has_Caps", "pragma", "-leading"):
            with pytest.raises(LintRegistryError):
                register_rule(Rule(name=name, check=lambda context: []))

    def test_violation_format_is_compiler_style(self):
        violation = Violation(
            rule="no-raw-write", path="a.py", line=3, col=7,
            message="bad", hint="do better",
        )
        assert violation.format() == "a.py:3:7: no-raw-write: bad (fix: do better)"
        assert violation.to_dict()["line"] == 3

    def test_syntax_error_is_reported_not_raised(self):
        violations = lint("def broken(:\n    pass\n")
        assert rule_names(violations) == {"syntax"}


# ---------------------------------------------------------------------------
# no-global-rng
# ---------------------------------------------------------------------------


class TestNoGlobalRng:
    def test_module_global_draw_flagged(self):
        violations = lint("""
            import numpy as np
            x = np.random.normal(size=3)
        """)
        assert rule_names(violations) == {"no-global-rng"}

    def test_unseeded_default_rng_flagged(self):
        violations = lint("""
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert rule_names(violations) == {"no-global-rng"}

    def test_seeded_default_rng_clean(self):
        assert lint("""
            import numpy as np
            rng = np.random.default_rng(1234)
        """) == []

    def test_stdlib_random_flagged(self):
        violations = lint("""
            import random
            x = random.random()
            r = random.Random()
        """)
        assert [v.rule for v in violations] == ["no-global-rng"] * 2

    def test_seeded_stdlib_random_clean(self):
        assert lint("""
            import random
            r = random.Random(7)
        """) == []

    def test_from_import_flagged(self):
        violations = lint("""
            from numpy.random import default_rng
            rng = default_rng()
        """)
        assert rule_names(violations) == {"no-global-rng"}

    def test_utils_rng_helpers_clean(self):
        assert lint("""
            from repro.utils.rng import new_rng, rng_for
            rng = new_rng(0)
            other = rng_for(0, "cell", "metric")
        """) == []

    def test_pragma_suppresses(self):
        assert lint("""
            import numpy as np
            rng = np.random.default_rng()  # repro-lint: disable=no-global-rng -- test fixture
        """) == []


# ---------------------------------------------------------------------------
# no-raw-write
# ---------------------------------------------------------------------------


class TestNoRawWrite:
    def test_open_write_mode_flagged(self):
        violations = lint("""
            with open("out.txt", "w") as fh:
                fh.write("hi")
        """)
        assert rule_names(violations) == {"no-raw-write"}

    def test_open_append_and_plus_modes_flagged(self):
        violations = lint("""
            a = open("log", "ab")
            b = open("log", mode="r+b")
        """)
        assert [v.rule for v in violations] == ["no-raw-write"] * 2

    def test_open_read_clean(self):
        assert lint("""
            with open("in.txt") as fh:
                data = fh.read()
            other = open("in.bin", "rb")
        """) == []

    def test_path_write_text_flagged(self):
        violations = lint("""
            from pathlib import Path
            Path("out.json").write_text("{}")
        """)
        assert rule_names(violations) == {"no-raw-write"}

    def test_np_save_flagged_buffer_requires_pragma(self):
        violations = lint("""
            import io
            import numpy as np
            np.save("arr.npy", [1, 2])
            buffer = io.BytesIO()
            np.save(buffer, [1, 2])
        """)
        # Both are flagged statically; the in-memory one is the documented
        # pragma case (visual.Gallery.save, checkpoint.save_state).
        assert [v.rule for v in violations] == ["no-raw-write"] * 2

    def test_atomic_helpers_clean(self):
        assert lint("""
            from repro.utils.checkpoint import atomic_write_text
            atomic_write_text("out.txt", "payload")
        """) == []

    def test_relaxed_in_bench_profile(self):
        source = 'open("report.txt", "w")\n'
        assert lint_source(
            source,
            rules=[r for r in rules_for("bench") if r.scope == "file"],
        ) == []

    def test_pragma_suppresses(self):
        assert lint("""
            handle = open("log", "r+b")  # repro-lint: disable=no-raw-write -- append-only log fixture
        """) == []


# ---------------------------------------------------------------------------
# no-wallclock
# ---------------------------------------------------------------------------


class TestNoWallclock:
    def test_time_time_flagged(self):
        violations = lint("""
            import time
            stamp = time.time()
        """)
        assert rule_names(violations) == {"no-wallclock"}

    def test_from_import_time_flagged(self):
        violations = lint("""
            from time import time
            stamp = time()
        """)
        assert rule_names(violations) == {"no-wallclock"}

    def test_datetime_now_flagged(self):
        violations = lint("""
            from datetime import datetime
            import datetime as dt
            a = datetime.now()
            b = dt.datetime.utcnow()
        """)
        assert [v.rule for v in violations] == ["no-wallclock"] * 2

    def test_perf_counter_allowed(self):
        assert lint("""
            import time
            start = time.perf_counter()
            elapsed = time.perf_counter() - start
            tick = time.monotonic()
        """) == []

    def test_unrelated_now_method_clean(self):
        assert lint("""
            class Clock:
                def now(self):
                    return 0
            value = Clock().now()
        """) == []

    def test_relaxed_in_bench_profile(self):
        source = "import time\nstamp = time.time()\n"
        assert lint_source(
            source,
            rules=[r for r in rules_for("bench") if r.scope == "file"],
        ) == []


# ---------------------------------------------------------------------------
# no-sim-wallclock
# ---------------------------------------------------------------------------


class TestNoSimWallclock:
    """Inside ``repro/fl`` the wallclock ban is total — even the interval
    timers the general rule allows measure the host, not the federation."""

    def fl_lint(self, source: str, path="src/repro/fl/engine.py"):
        return lint_source(textwrap.dedent(source), path=path)

    def test_perf_counter_flagged_in_fl_tree(self):
        violations = self.fl_lint("""
            import time
            start = time.perf_counter()
        """)
        assert "no-sim-wallclock" in rule_names(violations)

    def test_time_and_datetime_imports_flagged(self):
        violations = self.fl_lint("""
            import time
            from datetime import datetime
        """)
        assert [
            v.rule for v in violations if v.rule == "no-sim-wallclock"
        ] == ["no-sim-wallclock"] * 2

    def test_silent_outside_fl_tree(self):
        # perf_counter in, say, the sweep executor is the general rule's
        # business (allowed); this rule must not fire there.
        violations = lint_source(
            "import time\nstart = time.perf_counter()\n",
            path="src/repro/experiments/sweep.py",
        )
        assert "no-sim-wallclock" not in rule_names(violations)

    def test_virtual_clock_code_clean(self):
        assert self.fl_lint("""
            TICKS_PER_SECOND = 1_000_000

            def ticks(seconds):
                return int(round(seconds * TICKS_PER_SECOND))
        """) == []


# ---------------------------------------------------------------------------
# no-allocating-accumulate
# ---------------------------------------------------------------------------


class TestNoAllocatingAccumulate:
    """Gradient accumulation under ``src/repro/tensor`` must stay in
    place — reassignment-with-add churns an allocation per backward
    contribution, which is the regression the pooled buffers removed."""

    def tensor_lint(self, source: str, path="src/repro/tensor/tensor.py"):
        return lint_source(textwrap.dedent(source), path=path)

    def test_reassignment_accumulate_flagged(self):
        violations = self.tensor_lint("""
            def _accumulate(self, grad):
                if self.grad is None:
                    self.grad = grad
                else:
                    self.grad = self.grad + grad
        """)
        assert rule_names(violations) == {"no-allocating-accumulate"}

    def test_reversed_operand_order_flagged(self):
        violations = self.tensor_lint("""
            x.grad = contribution + x.grad
        """)
        assert rule_names(violations) == {"no-allocating-accumulate"}

    def test_in_place_forms_clean(self):
        assert self.tensor_lint("""
            import numpy as np

            np.add(x.grad, contribution, out=x.grad)
            x.grad += contribution
            x.grad = fresh_buffer
            x.grad = a + b
        """) == []

    def test_silent_outside_tensor_tree(self):
        violations = lint_source(
            "x.grad = x.grad + g\n",
            path="src/repro/nn/optim.py",
        )
        assert "no-allocating-accumulate" not in rule_names(violations)


# ---------------------------------------------------------------------------
# sorted-iteration
# ---------------------------------------------------------------------------


class TestSortedIteration:
    def test_for_over_set_literal_flagged(self):
        violations = lint("""
            for item in {1, 2, 3}:
                print(item)
        """)
        assert rule_names(violations) == {"sorted-iteration"}

    def test_for_over_set_call_and_keys_flagged(self):
        violations = lint("""
            names = set(["b", "a"])
            for name in names:
                print(name)
            table = {"k": 1}
            for key in table.keys():
                print(key)
        """)
        assert [v.rule for v in violations] == ["sorted-iteration"] * 2

    def test_directory_listing_flagged(self):
        violations = lint("""
            import os
            for entry in os.listdir("."):
                print(entry)
        """)
        assert rule_names(violations) == {"sorted-iteration"}

    def test_comprehension_and_materializer_flagged(self):
        violations = lint("""
            items = [x for x in {3, 1}]
            listing = list({"a", "b"})
        """)
        assert [v.rule for v in violations] == ["sorted-iteration"] * 2

    def test_sorted_wrapper_clean(self):
        assert lint("""
            import os
            names = set(["b", "a"])
            for name in sorted(names):
                print(name)
            for entry in sorted(os.listdir(".")):
                print(entry)
            items = [x for x in sorted({3, 1})]
        """) == []

    def test_reductions_and_membership_clean(self):
        assert lint("""
            names = {"a", "b"}
            total = len(names)
            biggest = max(names)
            hit = "a" in names
        """) == []

    def test_rebinding_clears_taint(self):
        assert lint("""
            names = {"b", "a"}
            names = sorted(names)
            for name in names:
                print(name)
        """) == []

    def test_fresh_scope_per_function(self):
        # A set bound at module level does not taint a same-named local.
        assert lint("""
            names = {"b", "a"}

            def show(names):
                for name in names:
                    print(name)
        """) == []


# ---------------------------------------------------------------------------
# picklable-entry
# ---------------------------------------------------------------------------


class TestPicklableEntry:
    def test_lambda_submit_flagged(self):
        violations = lint("""
            def run(executor):
                executor.submit(lambda: 1)
        """)
        assert rule_names(violations) == {"picklable-entry"}

    def test_lambda_process_target_flagged(self):
        violations = lint("""
            import multiprocessing as mp

            def run():
                mp.Process(target=lambda: None).start()
        """)
        assert rule_names(violations) == {"picklable-entry"}

    def test_nested_def_flagged(self):
        violations = lint("""
            def run(pool):
                def task(item):
                    return item
                pool.map(task, [1, 2])
        """)
        assert rule_names(violations) == {"picklable-entry"}

    def test_module_level_entry_clean(self):
        assert lint("""
            def task(item):
                return item

            def run(pool):
                pool.map(task, [1, 2])
        """) == []

    def test_imported_entry_clean(self):
        assert lint("""
            from repro.experiments.runner import evaluate_attack_cell

            def run(executor, payload):
                executor.submit(evaluate_attack_cell, payload)
        """) == []

    def test_plain_lambda_clean(self):
        # Lambdas that never cross a process boundary are fine.
        assert lint("""
            items = sorted([3, 1], key=lambda x: -x)
        """) == []


# ---------------------------------------------------------------------------
# Pragma grammar edge cases.
# ---------------------------------------------------------------------------


class TestPragmas:
    def test_comment_only_line_covers_next_line(self):
        assert lint("""
            # repro-lint: disable=no-raw-write -- fixture
            handle = open("log", "w+b")
        """) == []

    def test_inline_pragma_does_not_cover_next_line(self):
        violations = lint("""
            a = open("log", "w")  # repro-lint: disable=no-raw-write -- fixture
            b = open("log", "w")
        """)
        assert [v.line for v in violations] == [3]

    def test_multiple_rules_one_pragma(self):
        assert lint("""
            import time
            # repro-lint: disable=no-raw-write,no-wallclock -- fixture
            open("log", "w").write(str(time.time()))
        """) == []

    def test_missing_reason_suppresses_nothing(self):
        violations = lint("""
            handle = open("log", "w")  # repro-lint: disable=no-raw-write
        """)
        # Both the undocumented pragma AND the underlying violation report.
        assert rule_names(violations) == {"pragma", "no-raw-write"}

    def test_unknown_rule_in_pragma_reported(self):
        violations = lint("""
            x = 1  # repro-lint: disable=no-such-rule -- reason
        """)
        assert rule_names(violations) == {"pragma"}
        assert "no-such-rule" in violations[0].message

    def test_empty_disable_list_reported(self):
        violations = lint("""
            x = 1  # repro-lint: disable= -- reason
        """)
        assert rule_names(violations) == {"pragma"}

    def test_pragma_rule_itself_cannot_be_disabled(self):
        violations = lint("""
            x = 1  # repro-lint: disable=pragma -- nice try
        """)
        assert rule_names(violations) == {"pragma"}

    def test_pragma_only_suppresses_named_rule(self):
        violations = lint("""
            import time
            open("log", "w").write(str(time.time()))  # repro-lint: disable=no-raw-write -- fixture
        """)
        assert rule_names(violations) == {"no-wallclock"}


# ---------------------------------------------------------------------------
# CLI behavior and exit codes.
# ---------------------------------------------------------------------------


BAD_SNIPPET = textwrap.dedent("""
    import numpy as np
    import time

    def cell():
        rng = np.random.default_rng()
        with open("out.txt", "w") as fh:
            fh.write(str(time.time()))
        for k in {1, 2}:
            print(k)
""")


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("import numpy as np\nrng = np.random.default_rng(0)\n")
        assert main([str(target)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one_with_locations(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(BAD_SNIPPET)
        assert main([str(target)]) == 1
        out = capsys.readouterr().out
        # file:line:col, rule name, and a fix hint per finding.
        assert f"{target}:6:11: no-global-rng:" in out
        assert "(fix: " in out
        for rule in ("no-raw-write", "no-wallclock", "sorted-iteration"):
            assert rule in out

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(BAD_SNIPPET)
        assert main([str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["checked_files"] == 1
        assert payload["profile"] == "lib"
        rules = {entry["rule"] for entry in payload["violations"]}
        assert {"no-global-rng", "no-raw-write", "no-wallclock",
                "sorted-iteration"} <= rules
        for entry in payload["violations"]:
            assert entry["line"] > 0 and entry["hint"]

    def test_bench_profile_relaxes_io_rules(self, tmp_path):
        target = tmp_path / "bench.py"
        target.write_text(
            "import time\nopen('r.txt', 'w').write(str(time.time()))\n"
        )
        assert main([str(target)]) == 1
        assert main([str(target), "--profile", "bench"]) == 0

    def test_rules_flag_selects_subset(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(BAD_SNIPPET)
        assert main([str(target), "--rules", "picklable-entry"]) == 0
        assert main([str(target), "--rules", "no-wallclock"]) == 1

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in EXPECTED_RULES:
            assert rule in out

    def test_unknown_rule_is_usage_error(self, tmp_path):
        target = tmp_path / "x.py"
        target.write_text("x = 1\n")
        with pytest.raises(SystemExit) as excinfo:
            main([str(target), "--rules", "bogus"])
        assert excinfo.value.code == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path / "nope")])
        assert excinfo.value.code == 2

    def test_module_invocation(self, tmp_path):
        """``python -m repro.lint`` works end to end as a subprocess."""
        target = tmp_path / "bad.py"
        target.write_text(BAD_SNIPPET)
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(target)],
            capture_output=True, text=True,
            cwd=REPO_ROOT, env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 1
        assert "no-global-rng" in result.stdout


# ---------------------------------------------------------------------------
# The committed tree lints clean — the meta-test CI mirrors.
# ---------------------------------------------------------------------------


class TestCommittedTree:
    def test_src_tree_is_clean(self):
        violations, checked = lint_paths([SRC])
        assert checked > 0
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_benchmarks_clean_under_bench_profile(self):
        bench_dir = REPO_ROOT / "benchmarks"
        violations, checked = lint_paths([bench_dir], profile="bench")
        assert checked > 0
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_scratch_violation_would_fail(self, tmp_path):
        """Deliberately introducing a violation flips the exit to 1."""
        scratch = tmp_path / "scratch.py"
        scratch.write_text("import numpy as np\nnp.random.seed(0)\n")
        violations, _ = lint_paths([tmp_path])
        assert rule_names(violations) == {"no-global-rng"}
