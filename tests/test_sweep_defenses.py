"""The sweep's defense axis: composed stacks and gradient defenses in grids.

Satellite regressions for the defense-registry refactor: composed
pipelines and pure-gradient defenses run through the full sweep grid with
the same determinism guarantees as the OASIS arms, FedAvg weighting stays
at the pre-expansion batch size through any stack (the PR-2 weight-parity
fix under composition), and typo'd arms fail fast with a name-listing
error instead of one cell deep into a sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import ImprintedModel
from repro.data import make_synthetic_dataset
from repro.defense import UnknownDefenseError, make_defense
from repro.experiments import (
    ParticipationScenario,
    SweepCell,
    SweepRunner,
    SweepStore,
    make_executor,
)
from repro.experiments.sweep import ZOO_DEFENSES, main
from repro.fl import Client
from repro.fl.messages import ModelBroadcast
from repro.nn import CrossEntropyLoss


@pytest.fixture(scope="module")
def sweep_dataset():
    return make_synthetic_dataset(4, 12, image_size=8, seed=3, name="sweep")


def make_runner(dataset, store=None, **overrides):
    kwargs = dict(
        attacks=("rtf",),
        defenses=("WO", "MR", "dpsgd", "prune", "MR>dpsgd"),
        scenarios=(ParticipationScenario("full", num_clients=2),),
        batch_size=3,
        num_neurons=48,
        public_size=48,
        seed=0,
        store=store,
    )
    kwargs.update(overrides)
    return SweepRunner(dataset, **kwargs)


class TestDefenseAxis:
    def test_composed_and_gradient_arms_complete(self, sweep_dataset):
        outcome = make_runner(sweep_dataset).run()
        assert outcome.failed == []
        assert len(outcome.results) == 5
        for defense in ("dpsgd", "prune", "MR>dpsgd"):
            result = outcome.results[SweepCell("rtf", defense, "full").key]
            assert result["defense"] == defense
            assert result["mean_psnr"] >= 0.0

    def test_composed_arm_weakens_attack_below_undefended(self, sweep_dataset):
        outcome = make_runner(sweep_dataset).run()
        composed = outcome.mean_psnr("rtf", "MR>dpsgd", "full")
        undefended = outcome.mean_psnr("rtf", "WO", "full")
        assert composed < undefended

    def test_knobbed_spec_string_is_a_valid_arm(self, sweep_dataset):
        outcome = make_runner(
            sweep_dataset,
            defenses=("WO", "dpsgd(noise_multiplier=0.5)"),
        ).run()
        assert outcome.failed == []
        assert (
            SweepCell("rtf", "dpsgd(noise_multiplier=0.5)", "full").key
            in outcome.results
        )

    def test_unknown_defense_fails_fast_at_construction(self, sweep_dataset):
        with pytest.raises(UnknownDefenseError, match="registered defenses"):
            make_runner(sweep_dataset, defenses=("WO", "typo-defense"))
        with pytest.raises(UnknownDefenseError):
            make_runner(sweep_dataset, defenses=("MR>typo",))

    def test_stochastic_arms_serial_parallel_byte_identical(
        self, sweep_dataset, tmp_path
    ):
        # The determinism contract extends to arms that draw noise: DP and
        # composed cells derive their streams from the cell fingerprint,
        # so a 2-worker store matches the serial one byte for byte.
        serial, parallel = tmp_path / "s.json", tmp_path / "p.json"
        make_runner(sweep_dataset, store=serial).run()
        make_runner(sweep_dataset, store=parallel).run(make_executor(2))
        assert serial.read_bytes() == parallel.read_bytes()

    def test_zoo_lineup_constructs(self, sweep_dataset):
        # The CI defense-zoo lineup is always a valid axis.
        runner = make_runner(sweep_dataset, defenses=ZOO_DEFENSES)
        assert len(runner.cells()) == len(ZOO_DEFENSES)


class TestFedAvgWeightParity:
    """Reported example counts stay pre-expansion through any stack."""

    @pytest.mark.parametrize(
        "spec", ["MR", "MR>dpsgd", "MR>prune", "MR+SH>dpsgd(noise_multiplier=0.5)"]
    )
    def test_client_update_reports_pre_expansion_examples(
        self, sweep_dataset, spec
    ):
        model = ImprintedModel((3, 8, 8), 16, 4, rng=np.random.default_rng(1))
        client = Client(
            client_id=0,
            dataset=sweep_dataset,
            model=model,
            loss_fn=CrossEntropyLoss(),
            batch_size=3,
            defense=make_defense(spec, seed=5),
            seed=0,
        )
        update = client.local_update(
            ModelBroadcast(round_index=0, state=model.state_dict())
        )
        # Expansion is a privacy mechanism, not extra data: under
        # example-weighted FedAvg the defended client must weigh exactly
        # like an undefended one.
        assert update.num_examples == 3

    def test_pure_gradient_defense_reports_batch_size(self, sweep_dataset):
        model = ImprintedModel((3, 8, 8), 16, 4, rng=np.random.default_rng(1))
        client = Client(
            client_id=0,
            dataset=sweep_dataset,
            model=model,
            loss_fn=CrossEntropyLoss(),
            batch_size=3,
            defense="prune",  # spec strings resolve through the registry
            seed=0,
        )
        update = client.local_update(
            ModelBroadcast(round_index=0, state=model.state_dict())
        )
        assert update.num_examples == 3


class TestDefensesCLI:
    def test_defenses_flag_runs_the_lineup(self, tmp_path, capsys):
        store = tmp_path / "defenses.json"
        exit_code = main([
            "--grid", "smoke",
            "--defenses", "WO,MR,dpsgd,prune,MR>dpsgd",
            "--store", str(store),
        ])
        assert exit_code == 0
        cells = SweepStore(store)
        assert len(cells) == 5
        defenses = {key.split("|")[1] for key in cells.keys()}
        assert defenses == {"WO", "MR", "dpsgd", "prune", "MR>dpsgd"}
        assert "5 computed" in capsys.readouterr().out

    def test_defenses_flag_serial_parallel_stores_identical(self, tmp_path):
        serial, parallel = tmp_path / "s.json", tmp_path / "p.json"
        args = [
            "--grid", "smoke",
            "--attacks", "rtf,qbi",
            "--defenses", "WO,MR,dpsgd,MR>dpsgd",
        ]
        assert main(args + ["--store", str(serial)]) == 0
        assert main(args + ["--store", str(parallel), "--workers", "2"]) == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_knobbed_spec_with_commas_splits_correctly(self, tmp_path):
        store = tmp_path / "knobbed.json"
        exit_code = main([
            "--grid", "smoke",
            "--defenses", "WO,dpsgd(clip_norm=2.0,noise_multiplier=0.5)",
            "--store", str(store),
        ])
        assert exit_code == 0
        assert len(SweepStore(store)) == 2  # the knobbed spec is ONE arm, not two

    def test_unknown_defense_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "--grid", "smoke",
                "--defenses", "WO,nope",
                "--store", str(tmp_path / "x.json"),
            ])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "nope" in err and "registered defenses" in err

    def test_bad_suite_knob_is_a_usage_error(self, tmp_path, capsys):
        # UnknownSuiteError (KeyError family) raised inside the ats
        # factory must still land as a clean usage error, not a raw
        # traceback escaping the CLI's ValueError handling.
        with pytest.raises(SystemExit) as excinfo:
            main([
                "--grid", "smoke",
                "--defenses", "ats(suite=XYZ)",
                "--store", str(tmp_path / "x.json"),
            ])
        assert excinfo.value.code == 2
        assert "XYZ" in capsys.readouterr().err

    def test_unknown_knob_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "--grid", "smoke",
                "--defenses", "dpsgd(bogus=1)",
                "--store", str(tmp_path / "x.json"),
            ])
        assert excinfo.value.code == 2
        assert "declared knobs" in capsys.readouterr().err

    def test_duplicate_defense_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "--grid", "smoke",
                "--defenses", "MR,MR",
                "--store", str(tmp_path / "x.json"),
            ])
        assert excinfo.value.code == 2
        assert "twice" in capsys.readouterr().err

    def test_empty_defenses_flag_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "--grid", "smoke",
                "--defenses", " , ",
                "--store", str(tmp_path / "x.json"),
            ])
        assert excinfo.value.code == 2
        assert "at least one defense" in capsys.readouterr().err
