"""Module/Parameter registration, serialization, and mode switching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import BatchNorm2d, Linear, MLP, Module, Parameter, Sequential
from repro.tensor import Tensor


class Composite(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 3, rng=np.random.default_rng(0))
        self.fc2 = Linear(3, 2, rng=np.random.default_rng(1))
        self.register_buffer("counter", np.zeros(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


class TestRegistration:
    def test_parameters_discovered(self):
        model = Composite()
        names = [name for name, _ in model.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_buffers_discovered(self):
        model = Composite()
        names = [name for name, _ in model.named_buffers()]
        assert "counter" in names

    def test_num_parameters(self):
        model = Composite()
        assert model.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2

    def test_modules_iterates_tree(self):
        model = Composite()
        assert len(list(model.modules())) == 3  # self + 2 linears

    def test_parameter_is_tensor(self):
        p = Parameter(np.ones(3))
        assert isinstance(p, Tensor)
        assert p.requires_grad

    def test_flat_cache_invalidated_on_late_registration(self):
        model = Composite()
        assert len(list(model.named_parameters())) == 4  # builds the cache
        model.fc3 = Linear(2, 2, rng=np.random.default_rng(2))
        names = [name for name, _ in model.named_parameters()]
        assert "fc3.weight" in names and "fc3.bias" in names

    def test_flat_cache_invalidated_on_nested_registration(self):
        model = Composite()
        assert len(list(model.named_parameters())) == 4
        # Mutating a *child* must invalidate the parent's cached list.
        model.fc1.extra = Parameter(np.zeros(2))
        assert "fc1.extra" in dict(model.named_parameters())

    def test_flat_cache_invalidated_by_sequential_insert(self):
        model = Sequential(Linear(2, 2, rng=np.random.default_rng(0)))
        assert len(list(model.parameters())) == 2
        model.insert(0, Linear(2, 2, rng=np.random.default_rng(1)))
        assert len(list(model.parameters())) == 4


class TestModes:
    def test_train_eval_propagate(self):
        model = Sequential(Linear(4, 4), BatchNorm2d(4))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_all(self):
        model = Composite()
        x = Tensor(np.ones((2, 4)))
        model(x).sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip_exact(self):
        a = Composite()
        b = Composite()
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_copies(self):
        model = Composite()
        state = model.state_dict()
        state["fc1.weight"][:] = 0.0
        assert not np.all(model.fc1.weight.data == 0.0)

    def test_load_unknown_key_raises(self):
        model = Composite()
        state = model.state_dict()
        state["nonexistent.weight"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_buffers_roundtrip(self):
        model = Sequential(BatchNorm2d(3))
        bn = model[0]
        bn.running_mean[:] = 7.0
        state = model.state_dict()
        other = Sequential(BatchNorm2d(3))
        other.load_state_dict(state)
        np.testing.assert_array_equal(other[0].running_mean, np.full(3, 7.0))

    def test_grad_dict_zeros_when_no_grad(self):
        model = Composite()
        grads = model.grad_dict()
        assert set(grads) == {name for name, _ in model.named_parameters()}
        assert all(np.all(g == 0.0) for g in grads.values())

    def test_grad_dict_after_backward(self):
        model = Composite()
        model(Tensor(np.ones((2, 4)))).sum().backward()
        grads = model.grad_dict()
        assert any(np.any(g != 0.0) for g in grads.values())

    def test_load_state_dict_is_deep(self):
        a = Composite()
        b = Composite()
        state = a.state_dict()
        b.load_state_dict(state)
        b.fc1.weight.data[:] = 99.0
        assert not np.all(a.fc1.weight.data == 99.0)


class TestForward:
    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_mlp_flattens_images(self):
        mlp = MLP([27, 8, 2], rng=np.random.default_rng(0))
        out = mlp(Tensor(np.zeros((5, 3, 3, 3))))
        assert out.shape == (5, 2)
