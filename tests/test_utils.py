"""Utilities: RNG management, numeric helpers, checkpointing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import MLP
from repro.tensor import Tensor
from repro.utils import new_rng, numerical_gradient, spawn_rngs
from repro.utils.checkpoint import load_model, load_state, save_model, save_state


class TestRng:
    def test_new_rng_seeded(self):
        assert new_rng(5).random() == new_rng(5).random()

    def test_spawn_rngs_independent(self):
        a, b = spawn_rngs(7, 2)
        assert a.random() != b.random()

    def test_spawn_rngs_reproducible(self):
        first = [g.random() for g in spawn_rngs(7, 3)]
        second = [g.random() for g in spawn_rngs(7, 3)]
        assert first == second

    def test_spawn_count(self):
        assert len(spawn_rngs(0, 5)) == 5


class TestNumericalGradient:
    def test_quadratic(self):
        point = np.array([1.0, -2.0, 3.0])
        grad = numerical_gradient(lambda p: float(np.sum(p ** 2)), point)
        np.testing.assert_allclose(grad, 2 * point, atol=1e-6)

    def test_leaves_point_unchanged(self):
        point = np.array([1.0, 2.0])
        original = point.copy()
        numerical_gradient(lambda p: float(p.sum()), point)
        np.testing.assert_array_equal(point, original)

    def test_matrix_input(self, rng):
        point = rng.standard_normal((2, 3))
        grad = numerical_gradient(lambda p: float((p ** 3).sum()), point)
        np.testing.assert_allclose(grad, 3 * point ** 2, atol=1e-5)


class TestCheckpoint:
    def test_state_roundtrip(self, tmp_path, rng):
        state = {"a.weight": rng.standard_normal((3, 4)), "b": np.arange(5.0)}
        path = save_state(tmp_path / "ckpt", state)
        assert path.suffix == ".npz"
        loaded = load_state(path)
        assert set(loaded) == set(state)
        for key in state:
            np.testing.assert_array_equal(loaded[key], state[key])

    def test_model_roundtrip(self, tmp_path, rng):
        model = MLP([6, 4, 2], rng=np.random.default_rng(0))
        path = save_model(tmp_path / "model.npz", model)
        other = MLP([6, 4, 2], rng=np.random.default_rng(99))
        load_model(path, other)
        x = Tensor(rng.standard_normal((3, 6)))
        np.testing.assert_allclose(model(x).numpy(), other(x).numpy())

    def test_creates_parent_dirs(self, tmp_path):
        path = save_state(tmp_path / "deep" / "dir" / "x", {"w": np.ones(2)})
        assert path.exists()

    def test_loaded_arrays_are_writable(self, tmp_path):
        path = save_state(tmp_path / "s", {"w": np.ones(2)})
        loaded = load_state(path)
        loaded["w"][0] = 5.0  # must not raise
