"""Utilities: RNG management, numeric helpers, checkpointing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import MLP
from repro.tensor import Tensor
from repro.utils import (
    derive_seed,
    new_rng,
    numerical_gradient,
    rng_for,
    seed_sequence_for,
    spawn_rngs,
)
from repro.utils.checkpoint import (
    atomic_write_bytes,
    atomic_write_text,
    load_model,
    load_state,
    save_model,
    save_state,
)


class TestRng:
    def test_new_rng_seeded(self):
        assert new_rng(5).random() == new_rng(5).random()

    def test_spawn_rngs_independent(self):
        a, b = spawn_rngs(7, 2)
        assert a.random() != b.random()

    def test_spawn_rngs_reproducible(self):
        first = [g.random() for g in spawn_rngs(7, 3)]
        second = [g.random() for g in spawn_rngs(7, 3)]
        assert first == second

    def test_spawn_count(self):
        assert len(spawn_rngs(0, 5)) == 5


class TestLabelKeyedSeeding:
    """derive_seed / seed_sequence_for: streams keyed by labels, not order."""

    def test_deterministic_across_calls(self):
        assert derive_seed(0, "a|b|c") == derive_seed(0, "a|b|c")
        first = rng_for(7, "cell").standard_normal(4)
        second = rng_for(7, "cell").standard_normal(4)
        np.testing.assert_array_equal(first, second)

    def test_label_changes_stream(self):
        assert derive_seed(0, "cell-a") != derive_seed(0, "cell-b")
        assert derive_seed(0, "x", "y") != derive_seed(0, "y", "x")

    def test_base_seed_changes_stream(self):
        assert derive_seed(0, "cell") != derive_seed(1, "cell")

    def test_seed_in_uint32_range(self):
        for base in (0, 1, 2**63, -5):
            seed = derive_seed(base, "cell")
            assert 0 <= seed < 2**32

    def test_sequence_feeds_default_rng(self):
        rng = np.random.default_rng(seed_sequence_for(3, "label"))
        assert isinstance(rng.integers(0, 10), np.integer)

    def test_independent_of_other_consumers(self):
        # Asking for more labels never perturbs an existing one's stream.
        alone = derive_seed(5, "mine")
        with_neighbors = derive_seed(5, "mine")
        derive_seed(5, "other")
        assert alone == with_neighbors == derive_seed(5, "mine")


class TestAtomicWrite:
    def test_text_roundtrip(self, tmp_path):
        path = atomic_write_text(tmp_path / "out.txt", "hello\n")
        assert path.read_text() == "hello\n"

    def test_overwrites_existing(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_creates_parent_dirs(self, tmp_path):
        path = atomic_write_bytes(tmp_path / "a" / "b" / "out.bin", b"\x00\x01")
        assert path.read_bytes() == b"\x00\x01"

    def test_no_temp_file_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "out.txt", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_honors_umask_not_mkstemp_0600(self, tmp_path):
        import os

        path = atomic_write_text(tmp_path / "out.txt", "x")
        umask = os.umask(0)
        os.umask(umask)
        assert (path.stat().st_mode & 0o777) == (0o666 & ~umask)


class TestNumericalGradient:
    def test_quadratic(self):
        point = np.array([1.0, -2.0, 3.0])
        grad = numerical_gradient(lambda p: float(np.sum(p ** 2)), point)
        np.testing.assert_allclose(grad, 2 * point, atol=1e-6)

    def test_leaves_point_unchanged(self):
        point = np.array([1.0, 2.0])
        original = point.copy()
        numerical_gradient(lambda p: float(p.sum()), point)
        np.testing.assert_array_equal(point, original)

    def test_matrix_input(self, rng):
        point = rng.standard_normal((2, 3))
        grad = numerical_gradient(lambda p: float((p ** 3).sum()), point)
        np.testing.assert_allclose(grad, 3 * point ** 2, atol=1e-5)


class TestCheckpoint:
    def test_state_roundtrip(self, tmp_path, rng):
        state = {"a.weight": rng.standard_normal((3, 4)), "b": np.arange(5.0)}
        path = save_state(tmp_path / "ckpt", state)
        assert path.suffix == ".npz"
        loaded = load_state(path)
        assert set(loaded) == set(state)
        for key in state:
            np.testing.assert_array_equal(loaded[key], state[key])

    def test_model_roundtrip(self, tmp_path, rng):
        model = MLP([6, 4, 2], rng=np.random.default_rng(0))
        path = save_model(tmp_path / "model.npz", model)
        other = MLP([6, 4, 2], rng=np.random.default_rng(99))
        load_model(path, other)
        x = Tensor(rng.standard_normal((3, 6)))
        np.testing.assert_allclose(model(x).numpy(), other(x).numpy())

    def test_creates_parent_dirs(self, tmp_path):
        path = save_state(tmp_path / "deep" / "dir" / "x", {"w": np.ones(2)})
        assert path.exists()

    def test_loaded_arrays_are_writable(self, tmp_path):
        path = save_state(tmp_path / "s", {"w": np.ones(2)})
        loaded = load_state(path)
        loaded["w"][0] = 5.0  # must not raise
