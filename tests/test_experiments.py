"""Experiment harnesses: runners, sweeps, lineups, Table I, Fig 14, visuals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.defense import DPGradientDefense, OasisDefense
from repro.experiments import (
    PaperComparison,
    comparison_table,
    format_table,
    monotone_in_batch_size,
    reconstruction_gallery,
    render_ascii_image,
    render_pairs,
    run_ats_comparison,
    run_attack_trial,
    run_defense_lineup,
    run_linear_lineup,
    run_linear_trial,
    run_sweep,
    run_table1,
    side_by_side,
    table1_report,
    train_with_defense,
)
from repro.nn import MLP


class TestRunner:
    def test_rtf_trial_undefended_is_perfect(self, cifar_like):
        result = run_attack_trial(cifar_like, "rtf", 4, 100, seed=3)
        assert result.average_psnr > 120.0
        assert result.attack == "rtf"
        assert result.defense == "WO"

    def test_rtf_trial_defended_is_low(self, cifar_like):
        result = run_attack_trial(
            cifar_like, "rtf", 4, 100, defense=OasisDefense("MR"), seed=3
        )
        assert result.average_psnr < 40.0

    def test_cah_trial_runs(self, cifar_like):
        result = run_attack_trial(cifar_like, "cah", 8, 100, seed=3)
        assert result.num_reconstructions > 0

    def test_unknown_attack_rejected(self, cifar_like):
        with pytest.raises(ValueError):
            run_attack_trial(cifar_like, "dlg", 4, 100)

    def test_linear_trial(self, cifar_like):
        result = run_linear_trial(cifar_like, 8, seed=3)
        assert result.attack == "linear"
        assert result.num_reconstructions == 8

    def test_dp_defense_reduces_rtf(self, cifar_like):
        clean = run_attack_trial(cifar_like, "rtf", 4, 100, seed=3)
        noisy = run_attack_trial(
            cifar_like, "rtf", 4, 100,
            defense=DPGradientDefense(clip_norm=1.0, noise_multiplier=0.5), seed=3,
        )
        assert noisy.average_psnr < clean.average_psnr

    def test_trials_reproducible(self, cifar_like):
        a = run_attack_trial(cifar_like, "rtf", 4, 100, seed=5)
        b = run_attack_trial(cifar_like, "rtf", 4, 100, seed=5)
        assert a.psnrs == b.psnrs


class TestSweep:
    def test_grid_shape_and_trend(self, cifar_like):
        result = run_sweep(
            cifar_like, "rtf",
            batch_sizes=(4, 16, 64),
            neuron_counts=(50, 150),
            num_trials=1,
        )
        assert result.grid.shape == (2, 3)
        assert monotone_in_batch_size(result) >= 0.5

    def test_optima_selected_per_batch(self, cifar_like):
        result = run_sweep(
            cifar_like, "rtf",
            batch_sizes=(4, 16),
            neuron_counts=(50, 150),
            num_trials=1,
        )
        assert set(result.optima) == {4, 16}
        for n, value in result.optima.values():
            assert n in (50, 150)
            assert value > 0.0

    def test_oversized_batch_is_nan(self, cifar_like):
        result = run_sweep(
            cifar_like, "rtf",
            batch_sizes=(4, 100_000),
            neuron_counts=(50,),
            num_trials=1,
        )
        assert np.isnan(result.grid[0, 1])

    def test_table_renders(self, cifar_like):
        result = run_sweep(
            cifar_like, "rtf", batch_sizes=(4,), neuron_counts=(50,), num_trials=1
        )
        table = result.to_table()
        assert "50" in table


class TestLineups:
    def test_fig5_style_lineup(self, cifar_like):
        result = run_defense_lineup(
            cifar_like, "rtf", 4, 100, ("WO", "MR"), num_trials=1
        )
        averages = result.averages()
        assert averages["WO"] > averages["MR"] + 80.0
        assert "WO" in result.to_table()

    def test_fig13_lineup(self, cifar_like):
        result = run_linear_lineup(cifar_like, 4, ("WO", "MR"), num_trials=1)
        averages = result.averages()
        assert averages["WO"] > averages["MR"]


class TestTable1:
    def _factory(self, dataset):
        return lambda: MLP([dataset.flat_dim, 32, dataset.num_classes],
                           rng=np.random.default_rng(1))

    def test_training_improves_over_chance(self, tiny_dataset):
        outcome = train_with_defense(
            tiny_dataset, tiny_dataset, self._factory(tiny_dataset),
            epochs=15, batch_size=8,
        )
        assert outcome.test_accuracy > 1.5 / tiny_dataset.num_classes

    def test_oasis_arm_trains_comparably(self, tiny_dataset):
        base = train_with_defense(
            tiny_dataset, tiny_dataset, self._factory(tiny_dataset),
            epochs=15, batch_size=8,
        )
        oasis = train_with_defense(
            tiny_dataset, tiny_dataset, self._factory(tiny_dataset),
            defense=OasisDefense("HFlip"), epochs=15, batch_size=8,
        )
        assert oasis.test_accuracy > base.test_accuracy - 0.35

    def test_run_table1_and_report(self, tiny_dataset):
        outcomes = run_table1(
            tiny_dataset, tiny_dataset, self._factory(tiny_dataset),
            lineup=("HFlip", "WO"), epochs=5, batch_size=8,
        )
        report = table1_report(outcomes)
        assert "WO" in report and "HFlip" in report


class TestATSComparison:
    def test_transform_replace_fails_oasis_succeeds(self, cifar_like):
        result = run_ats_comparison(cifar_like, batch_size=4, num_neurons=100)
        # Fig. 14's claim: ATS reconstructions reveal the (transformed)
        # training inputs at perfect-reconstruction quality...
        assert result.ats_vs_training_inputs > 100.0
        # ...while OASIS reconstructions match nothing.
        assert result.oasis_vs_originals < 40.0
        assert result.oasis_vs_training_inputs < 60.0


class TestVisual:
    def test_gallery_without_defense(self, cifar_like):
        gallery = reconstruction_gallery(cifar_like, "rtf", None, 4, 100, max_pairs=2)
        assert len(gallery.originals) == 2
        assert all(p > 100.0 for p in gallery.psnrs)

    def test_gallery_with_defense(self, cifar_like):
        gallery = reconstruction_gallery(cifar_like, "rtf", "MR", 4, 100, max_pairs=2)
        assert all(p < 60.0 for p in gallery.psnrs)

    def test_render_pairs(self, cifar_like):
        gallery = reconstruction_gallery(cifar_like, "rtf", "MR", 4, 100, max_pairs=1)
        art = render_pairs(gallery, width=16, max_pairs=1)
        assert "PSNR" in art
        assert "|" in art

    def test_gallery_save(self, cifar_like, tmp_path):
        gallery = reconstruction_gallery(cifar_like, "rtf", "MR", 4, 100, max_pairs=1)
        gallery.save(tmp_path)
        saved = list(tmp_path.glob("*.npy"))
        assert len(saved) == 2


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], [3, 4.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "2.50" in table

    def test_comparison_table(self):
        rows = [PaperComparison("fig5", "MR psnr", "15-20", 16.5, True)]
        table = comparison_table(rows)
        assert "fig5" in table and "yes" in table

    def test_render_ascii_image_dimensions(self, rng):
        art = render_ascii_image(rng.random((3, 16, 16)), width=20)
        lines = art.splitlines()
        assert all(len(line) == 20 for line in lines)

    def test_side_by_side(self):
        joined = side_by_side("ab\ncd", "xy\nzw")
        assert "ab" in joined.splitlines()[0]
        assert "xy" in joined.splitlines()[0]
