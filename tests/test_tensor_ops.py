"""Unit tests for elementwise/reduction/shape ops of the autograd engine.

Every op's backward pass is validated against central finite differences —
the attacks invert literal gradient values, so gradient exactness is a
functional requirement, not a nicety.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, concatenate, stack
from repro.utils import new_rng, numerical_gradient

ATOL = 1e-6


def check_grad(build_loss, point: np.ndarray, atol: float = ATOL) -> None:
    """Compare autograd gradient of ``build_loss`` to finite differences."""
    tensor = Tensor(point.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()
    numeric = numerical_gradient(lambda p: build_loss(Tensor(p)).item(), point.copy())
    np.testing.assert_allclose(tensor.grad, numeric, atol=atol)


class TestArithmetic:
    def test_add_forward(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        np.testing.assert_array_equal((a + b).numpy(), [4.0, 6.0])

    def test_add_grad(self, rng):
        x = rng.standard_normal((3, 4))
        check_grad(lambda t: (t + 2.0).sum(), x)

    def test_add_broadcast_grad(self, rng):
        x = rng.standard_normal((3, 1))
        other = Tensor(rng.standard_normal((3, 4)))
        check_grad(lambda t: (t + other).sum(), x)

    def test_radd(self):
        out = 5.0 + Tensor([1.0])
        assert out.numpy()[0] == 6.0

    def test_sub_grad(self, rng):
        x = rng.standard_normal((4,))
        other = Tensor(rng.standard_normal((4,)))
        check_grad(lambda t: (t - other).sum(), x)

    def test_rsub(self):
        out = 3.0 - Tensor([1.0])
        assert out.numpy()[0] == 2.0

    def test_mul_grad(self, rng):
        x = rng.standard_normal((2, 5))
        other = Tensor(rng.standard_normal((2, 5)))
        check_grad(lambda t: (t * other).sum(), x)

    def test_mul_broadcast_to_scalar_operand(self, rng):
        x = rng.standard_normal((1,))
        other = Tensor(rng.standard_normal((6,)))
        check_grad(lambda t: (other * t).sum(), x)

    def test_div_grad(self, rng):
        x = rng.standard_normal((3, 3)) + 5.0
        other = Tensor(rng.standard_normal((3, 3)) + 5.0)
        check_grad(lambda t: (other / t).sum(), x, atol=1e-5)

    def test_rtruediv(self):
        out = 10.0 / Tensor([2.0])
        assert out.numpy()[0] == 5.0

    def test_neg_grad(self, rng):
        x = rng.standard_normal((4,))
        check_grad(lambda t: (-t).sum(), x)

    def test_pow_grad(self, rng):
        x = np.abs(rng.standard_normal((3,))) + 0.5
        check_grad(lambda t: (t ** 3).sum(), x, atol=1e-5)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_both_operands_accumulate(self, rng):
        a = Tensor(rng.standard_normal((3,)), requires_grad=True)
        b = Tensor(rng.standard_normal((3,)), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b.data)
        np.testing.assert_allclose(b.grad, a.data)


class TestNonlinearities:
    def test_relu_forward(self):
        out = Tensor([-1.0, 0.0, 2.0]).relu()
        np.testing.assert_array_equal(out.numpy(), [0.0, 0.0, 2.0])

    def test_relu_grad(self, rng):
        x = rng.standard_normal((10,)) + 0.05  # keep away from the kink
        check_grad(lambda t: t.relu().sum(), x)

    def test_relu_grad_zero_below(self):
        t = Tensor([-2.0, 3.0], requires_grad=True)
        t.relu().sum().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 1.0])

    def test_exp_grad(self, rng):
        x = rng.standard_normal((5,))
        check_grad(lambda t: t.exp().sum(), x, atol=1e-5)

    def test_log_grad(self, rng):
        x = np.abs(rng.standard_normal((5,))) + 1.0
        check_grad(lambda t: t.log().sum(), x, atol=1e-5)

    def test_sqrt(self):
        out = Tensor([4.0, 9.0]).sqrt()
        np.testing.assert_allclose(out.numpy(), [2.0, 3.0])

    def test_tanh_grad(self, rng):
        x = rng.standard_normal((6,))
        check_grad(lambda t: t.tanh().sum(), x, atol=1e-5)

    def test_sigmoid_grad(self, rng):
        x = rng.standard_normal((6,))
        check_grad(lambda t: t.sigmoid().sum(), x, atol=1e-5)

    def test_abs_grad(self, rng):
        x = rng.standard_normal((8,)) + np.sign(rng.standard_normal(8)) * 0.5
        check_grad(lambda t: t.abs().sum(), x)

    def test_clip_forward(self):
        out = Tensor([-1.0, 0.5, 2.0]).clip(0.0, 1.0)
        np.testing.assert_array_equal(out.numpy(), [0.0, 0.5, 1.0])

    def test_clip_grad_masks_outside(self):
        t = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        t.clip(0.0, 1.0).sum().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 1.0, 0.0])


class TestMatmul:
    def test_matmul_forward(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 5))
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.numpy(), a @ b)

    def test_matmul_grad_left(self, rng):
        x = rng.standard_normal((3, 4))
        other = Tensor(rng.standard_normal((4, 2)))
        check_grad(lambda t: (t @ other).sum(), x, atol=1e-5)

    def test_matmul_grad_right(self, rng):
        x = rng.standard_normal((4, 2))
        other = Tensor(rng.standard_normal((3, 4)))
        check_grad(lambda t: (other @ t).sum(), x, atol=1e-5)

    def test_matmul_vector(self, rng):
        a = rng.standard_normal((3, 4))
        v = rng.standard_normal(4)
        out = Tensor(a) @ Tensor(v)
        np.testing.assert_allclose(out.numpy(), a @ v)

    def test_matmul_vector_grads(self, rng):
        x = rng.standard_normal((4,))
        mat = Tensor(rng.standard_normal((3, 4)))
        check_grad(lambda t: (mat @ t).sum(), x, atol=1e-5)


class TestShapes:
    def test_reshape_roundtrip_grad(self, rng):
        x = rng.standard_normal((2, 6))
        check_grad(lambda t: (t.reshape(3, 4) * 2.0).sum(), x)

    def test_reshape_accepts_tuple(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape((2, 3)).shape == (2, 3)

    def test_flatten(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.flatten(1).shape == (2, 12)
        assert t.flatten(0).shape == (24,)

    def test_transpose_grad(self, rng):
        x = rng.standard_normal((2, 3))
        other = Tensor(rng.standard_normal((2, 3)))
        check_grad(lambda t: (t.T.transpose(1, 0) * other).sum(), x)

    def test_transpose_axes(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.transpose(2, 0, 1).shape == (4, 2, 3)

    def test_getitem_grad_scatter(self):
        t = Tensor(np.arange(5.0), requires_grad=True)
        t[1:3].sum().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 1.0, 1.0, 0.0, 0.0])

    def test_getitem_duplicate_index_accumulates(self):
        t = Tensor(np.arange(3.0), requires_grad=True)
        t[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_array_equal(t.grad, [2.0, 0.0, 1.0])

    def test_pad2d_shape_and_grad(self, rng):
        x = rng.standard_normal((1, 2, 3, 3))
        t = Tensor(x, requires_grad=True)
        padded = t.pad2d(2)
        assert padded.shape == (1, 2, 7, 7)
        padded.sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones_like(x))

    def test_pad2d_zero_is_identity(self):
        t = Tensor(np.ones((1, 1, 2, 2)))
        assert t.pad2d(0) is t


class TestReductions:
    def test_sum_all(self, rng):
        x = rng.standard_normal((3, 4))
        check_grad(lambda t: t.sum(), x)

    def test_sum_axis_keepdims(self, rng):
        x = rng.standard_normal((3, 4))
        other = Tensor(rng.standard_normal((3, 1)))
        check_grad(lambda t: (t.sum(axis=1, keepdims=True) * other).sum(), x)

    def test_sum_axis_no_keepdims(self, rng):
        x = rng.standard_normal((3, 4, 2))
        check_grad(lambda t: (t.sum(axis=(0, 2)) ** 2).sum(), x, atol=1e-5)

    def test_sum_negative_axis(self, rng):
        x = rng.standard_normal((2, 3))
        check_grad(lambda t: (t.sum(axis=-1) ** 2).sum(), x, atol=1e-5)

    def test_mean_matches_numpy(self, rng):
        x = rng.standard_normal((4, 5))
        assert np.isclose(Tensor(x).mean().item(), x.mean())

    def test_mean_axis_grad(self, rng):
        x = rng.standard_normal((4, 5))
        check_grad(lambda t: (t.mean(axis=0) ** 2).sum(), x, atol=1e-5)

    def test_var_matches_numpy(self, rng):
        x = rng.standard_normal((4, 5))
        assert np.isclose(Tensor(x).var().item(), x.var())

    def test_max_forward(self, rng):
        x = rng.standard_normal((3, 4))
        np.testing.assert_allclose(Tensor(x).max(axis=1).numpy(), x.max(axis=1))

    def test_max_grad_flows_to_argmax(self):
        t = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_array_equal(t.grad, [[0.0, 1.0, 0.0]])

    def test_max_grad_splits_ties(self):
        t = Tensor(np.array([[3.0, 3.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5]])


class TestSoftmax:
    def test_log_softmax_normalizes(self, rng):
        x = rng.standard_normal((4, 7))
        log_probs = Tensor(x).log_softmax(axis=-1).numpy()
        np.testing.assert_allclose(np.exp(log_probs).sum(axis=-1), 1.0, atol=1e-12)

    def test_softmax_shift_invariance(self, rng):
        x = rng.standard_normal((3, 5))
        a = Tensor(x).softmax(axis=-1).numpy()
        b = Tensor(x + 100.0).softmax(axis=-1).numpy()
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_log_softmax_grad(self, rng):
        x = rng.standard_normal((2, 4))
        pick = Tensor(np.eye(4)[:2])
        check_grad(lambda t: (t.log_softmax(axis=-1) * pick).sum(), x, atol=1e-5)


class TestConstructorsAndConcat:
    def test_zeros_ones(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        np.testing.assert_array_equal(Tensor.ones(2).numpy(), [1.0, 1.0])

    def test_randn_seeded(self):
        a = Tensor.randn(4, rng=new_rng(0)).numpy()
        b = Tensor.randn(4, rng=new_rng(0)).numpy()
        np.testing.assert_array_equal(a, b)

    def test_concatenate_forward(self, rng):
        a, b = rng.standard_normal((2, 3)), rng.standard_normal((4, 3))
        out = concatenate([Tensor(a), Tensor(b)], axis=0)
        np.testing.assert_array_equal(out.numpy(), np.concatenate([a, b]))

    def test_concatenate_grad_routes_to_parts(self, rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((1, 3)), requires_grad=True)
        (concatenate([a, b], axis=0) * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((1, 3), 2.0))

    def test_stack_forward_and_grad(self, rng):
        a = Tensor(rng.standard_normal((3,)), requires_grad=True)
        b = Tensor(rng.standard_normal((3,)), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones(3))
        np.testing.assert_array_equal(b.grad, np.ones(3))
