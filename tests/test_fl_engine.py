"""Event-engine tests: legacy byte-identity, clock/heap determinism, cutoffs.

The load-bearing suite here is :class:`TestLegacyByteIdentity`: a verbatim
copy of the pre-engine synchronous ``run_round`` loop (as
:class:`LegacyRoundMixin`) runs side by side with the event engine's
degenerate count-cutoff configuration, and every ``RoundRecord`` field,
every aggregate, and the final model state must match exactly — the
acceptance criterion that lets the engine replace the loop without
invalidating a single golden value.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.fl import (
    DishonestServer,
    GradientUpdate,
    RoundBuffer,
    Server,
)
from repro.fl.engine import (
    CountCutoff,
    Event,
    EventQueue,
    TimeCutoff,
    VirtualClock,
    make_cutoff,
    ticks,
)
from repro.fl.arrivals import (
    DiurnalCycle,
    InstantArrivals,
    TieredArrivals,
    UniformArrivals,
    make_arrivals,
)
from repro.fl.secagg.base import BelowThresholdError
from repro.nn.module import Module

DIM = 4


class StubClient:
    """Deterministic fake client: every gradient entry equals its id."""

    def __init__(self, client_id: int) -> None:
        self.client_id = client_id

    def local_update(self, broadcast) -> GradientUpdate:
        return GradientUpdate(
            client_id=self.client_id,
            round_index=broadcast.round_index,
            num_examples=1,
            gradients={"w": np.full(DIM, float(self.client_id))},
            loss=float(self.client_id),
        )


class LegacyRoundMixin:
    """The pre-engine synchronous round loop, verbatim.

    Drives every selected client inline in selection order, draws
    dropout/straggler coin flips from the server RNG itself, and builds
    the round buffer only after all updates exist — the exact code the
    event engine replaced, kept here as the byte-identity reference.
    """

    def _legacy_select_clients(self):
        indices = self._rng.choice(
            len(self.fleet), size=self.clients_per_round, replace=False
        )
        return [self.fleet.get(int(i)) for i in indices]

    def _legacy_simulate_participation(self, participants):
        if self.dropout_rate == 0.0 and self.straggler_rate == 0.0:
            return list(participants), [], []
        active, dropped, stragglers = [], [], []
        for client in participants:
            if self._rng.random() < self.dropout_rate:
                dropped.append(client)
            elif self._rng.random() < self.straggler_rate:
                stragglers.append(client)
            else:
                active.append(client)
        return active, dropped, stragglers

    def run_round(self):
        from repro.fl.messages import RoundRecord

        protocol_mode = getattr(self.aggregator, "requires_commitment", False)
        broadcast = self.prepare_broadcast()
        selected = self._legacy_select_clients()
        active, dropped, stragglers = self._legacy_simulate_participation(
            selected
        )
        updates = [
            client.local_update(self.broadcast_to(client, broadcast))
            for client in active
        ]
        late = (
            []
            if protocol_mode
            else [
                client.local_update(self.broadcast_to(client, broadcast))
                for client in stragglers
            ]
        )
        stale = self._stale_updates if self.accept_stale else []
        self._stale_updates = late
        attack_events = (
            [] if protocol_mode else self.inspect_updates(updates + stale)
        )
        arrivals = updates + stale
        secagg_meta = None
        weights = (
            [u.num_examples for u in arrivals]
            if (self.weight_by_examples and arrivals)
            else None
        )
        aggregated = None
        if arrivals:
            buffer = RoundBuffer.for_updates([u.gradients for u in arrivals])
            if protocol_mode:
                try:
                    aggregated = self.aggregator.aggregate_committed(
                        buffer,
                        survivor_ids=[u.client_id for u in arrivals],
                        committed_ids=[c.client_id for c in selected],
                        round_index=self.round_index,
                        weights=weights,
                    )
                    secagg_meta = dict(self.aggregator.last_metadata)
                except BelowThresholdError as error:
                    secagg_meta = {
                        "protocol": self.aggregator.name,
                        "aborted": True,
                        "survivors": error.survivors,
                        "threshold": error.threshold,
                    }
                    arrivals = []
            else:
                aggregated = self.aggregator.aggregate_buffer(
                    buffer, weights, round_index=self.round_index
                )
        if aggregated is not None:
            self.apply_aggregate(aggregated)
            self.last_aggregate = aggregated
            attack_events = attack_events + self.inspect_aggregate(aggregated)
        else:
            self.last_aggregate = None
        record = RoundRecord(
            round_index=self.round_index,
            participant_ids=[u.client_id for u in arrivals],
            mean_loss=(
                float(np.mean([u.loss for u in arrivals]))
                if arrivals
                else float("nan")
            ),
            attack_events=attack_events,
            selected_ids=[c.client_id for c in selected],
            dropped_ids=[c.client_id for c in dropped],
            straggler_ids=[c.client_id for c in stragglers],
            stale_ids=[u.client_id for u in stale],
            aggregator=self.aggregator.name,
            weighting=self.aggregator.effective_weighting(weights),
            secagg=secagg_meta,
        )
        self.history.append(record)
        self.round_index += 1
        return record


class LegacyServer(LegacyRoundMixin, Server):
    pass


class LegacyDishonestServer(LegacyRoundMixin, DishonestServer):
    pass


def assert_records_identical(engine_records, legacy_records):
    """Field-for-field RoundRecord equality (nan-aware on mean_loss)."""
    assert len(engine_records) == len(legacy_records)
    for ours, reference in zip(engine_records, legacy_records):
        ours = dataclasses.asdict(ours)
        reference = dataclasses.asdict(reference)
        ours_loss = ours.pop("mean_loss")
        reference_loss = reference.pop("mean_loss")
        if np.isnan(reference_loss):
            assert np.isnan(ours_loss)
        else:
            assert ours_loss == reference_loss
        assert ours == reference


# Every rate-based participation regime the legacy loop supported.
IDENTITY_SCENARIOS = [
    dict(),
    dict(clients_per_round=5),
    dict(dropout_rate=0.3),
    dict(straggler_rate=0.4),
    dict(dropout_rate=0.2, straggler_rate=0.3),
    dict(dropout_rate=0.2, straggler_rate=0.3, accept_stale=True),
    dict(dropout_rate=1.0),
    dict(straggler_rate=1.0, accept_stale=True),
    dict(clients_per_round=6, dropout_rate=0.25, aggregator="median"),
    dict(weight_by_examples=True),
    dict(aggregator="masked_sum", dropout_rate=0.25),
]


class TestLegacyByteIdentity:
    @pytest.mark.parametrize("kwargs", IDENTITY_SCENARIOS)
    @pytest.mark.parametrize("seed", [0, 3, 42])
    def test_records_match_legacy_loop(self, kwargs, seed):
        engine = Server(
            Module(), [StubClient(i) for i in range(10)], seed=seed, **kwargs
        )
        legacy = LegacyServer(
            Module(), [StubClient(i) for i in range(10)], seed=seed, **kwargs
        )
        assert_records_identical(engine.run(6), legacy.run(6))
        if engine.last_aggregate is None:
            assert legacy.last_aggregate is None
        else:
            np.testing.assert_array_equal(
                engine.last_aggregate["w"], legacy.last_aggregate["w"]
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(aggregator="secagg"),
            dict(aggregator="secagg", dropout_rate=0.25),
            dict(aggregator="secagg_oneshot", dropout_rate=0.25),
            dict(aggregator="secagg", dropout_rate=0.6),  # abort regime
        ],
    )
    def test_secagg_commit_then_drop_matches_legacy(self, kwargs):
        engine = Server(
            Module(), [StubClient(i) for i in range(8)], seed=7, **kwargs
        )
        legacy = LegacyServer(
            Module(), [StubClient(i) for i in range(8)], seed=7, **kwargs
        )
        assert_records_identical(engine.run(4), legacy.run(4))

    def test_dishonest_server_matches_legacy(self):
        class RecordingAttack:
            name = "recording"

            def craft(self, model):
                pass

            def reconstruct(self, gradients):
                # The reconstruction payload is the gradient itself, so a
                # compute-order difference would change stored results.
                return [gradients["w"].copy()]

        engine = DishonestServer(
            Module(),
            [StubClient(i) for i in range(12)],
            RecordingAttack(),
            dropout_rate=0.2,
            straggler_rate=0.3,
            accept_stale=True,
            seed=11,
        )
        legacy = LegacyDishonestServer(
            Module(),
            [StubClient(i) for i in range(12)],
            RecordingAttack(),
            dropout_rate=0.2,
            straggler_rate=0.3,
            accept_stale=True,
            seed=11,
        )
        assert_records_identical(engine.run(5), legacy.run(5))
        assert engine.reconstructions.keys() == legacy.reconstructions.keys()
        for key, results in engine.reconstructions.items():
            for ours, reference in zip(results, legacy.reconstructions[key]):
                np.testing.assert_array_equal(ours, reference)

    def test_compat_records_carry_no_timing(self):
        server = Server(Module(), [StubClient(i) for i in range(4)], seed=0)
        assert server.run_round().timing is None

    def test_engine_rounds_are_deterministic(self):
        def run():
            server = Server(
                Module(),
                [StubClient(i) for i in range(10)],
                dropout_rate=0.2,
                straggler_rate=0.2,
                accept_stale=True,
                seed=5,
            )
            return server.run(5)

        assert_records_identical(run(), run())


class TestVirtualClock:
    def test_starts_at_zero_and_advances(self):
        clock = VirtualClock()
        assert clock.now == 0
        clock.advance_to(ticks(1.5))
        assert clock.now == 1_500_000
        assert clock.now_s == pytest.approx(1.5)

    def test_never_runs_backwards(self):
        clock = VirtualClock(start=10)
        with pytest.raises(ValueError):
            clock.advance_to(9)


class TestEventQueue:
    def test_pop_order_is_sorted_key_order(self):
        events = [
            Event(5, "completion", 2),
            Event(5, "close"),
            Event(5, "completion", 1),
            Event(3, "completion", 9),
        ]
        queue = EventQueue(events)
        popped = [queue.pop() for _ in range(len(events))]
        assert popped == sorted(events, key=lambda e: e.sort_key)
        # Completions at the deadline tick beat the close event: an
        # update landing exactly at the cutoff is on time.
        assert [e.kind for e in popped] == [
            "completion", "completion", "completion", "close",
        ]

    def test_duplicate_keys_rejected(self):
        queue = EventQueue([Event(1, "completion", 4)])
        with pytest.raises(ValueError):
            queue.push(Event(1, "completion", 4))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Event(0, "arrival")


class TestCutoffs:
    def test_make_cutoff_resolves_policies(self):
        assert make_cutoff() == CountCutoff()
        assert make_cutoff(count_target=3) == CountCutoff(target=3)
        timed = make_cutoff(round_duration_s=0.5, min_arrivals=2)
        assert timed == TimeCutoff(ticks(0.5), min_arrivals=2)

    def test_invalid_cutoffs_rejected(self):
        with pytest.raises(ValueError):
            CountCutoff(target=0)
        with pytest.raises(ValueError):
            TimeCutoff(0)
        with pytest.raises(ValueError):
            TimeCutoff(10, min_arrivals=-1)

    def test_time_cutoff_produces_emergent_stragglers(self):
        server = Server(
            Module(),
            [StubClient(i) for i in range(8)],
            arrivals="uniform",
            arrival_options={"low_s": 0.1, "high_s": 1.0},
            cutoff=TimeCutoff(ticks(0.5)),
            seed=2,
        )
        records = server.run(4)
        assert any(r.straggler_ids for r in records), (
            "a 0.5s cutoff over 0.1-1.0s latencies must strand someone"
        )
        for record in records:
            assert record.timing is not None
            assert record.timing["cutoff"] == "time"
            deadline = record.timing["opened_at"] + ticks(0.5)
            for _, tick in record.timing["arrival_ticks"]:
                assert tick <= deadline
            for _, tick in record.timing["late_ticks"]:
                assert tick > deadline

    def test_time_cutoff_min_arrivals_floor(self):
        # Deadline far below every possible latency: the grace floor must
        # hold the round open until one update lands.
        server = Server(
            Module(),
            [StubClient(i) for i in range(6)],
            arrivals="uniform",
            arrival_options={"low_s": 1.0, "high_s": 2.0},
            cutoff=TimeCutoff(ticks(0.01), min_arrivals=1),
            seed=0,
        )
        record = server.run_round()
        assert len(record.participant_ids) == 1
        assert len(record.straggler_ids) == 5

    def test_count_target_closes_early(self):
        server = Server(
            Module(),
            [StubClient(i) for i in range(8)],
            arrivals="uniform",
            cutoff=CountCutoff(target=3),
            seed=1,
        )
        record = server.run_round()
        assert len(record.participant_ids) == 3
        assert len(record.straggler_ids) == 5

    def test_virtual_clock_advances_across_rounds(self):
        server = Server(
            Module(),
            [StubClient(i) for i in range(4)],
            arrivals="uniform",
            cutoff=TimeCutoff(ticks(0.5), min_arrivals=1),
            seed=0,
        )
        opened = []
        for _ in range(3):
            record = server.run_round()
            opened.append(record.timing["opened_at"])
        assert opened == sorted(opened)
        assert server.clock.now >= opened[-1]


class TestArrivalProcesses:
    def test_instant_reproduces_rate_draws(self):
        rng_a = np.random.default_rng(42)
        rng_b = np.random.default_rng(42)
        process = InstantArrivals(dropout_rate=0.3, straggler_rate=0.2)
        plan = process.plan_round(list(range(32)), 0, 0, rng_a)
        # Reference: the legacy per-client coin-flip sequence.
        active, dropped, stragglers = [], [], []
        for client_id in range(32):
            if rng_b.random() < 0.3:
                dropped.append(client_id)
            elif rng_b.random() < 0.2:
                stragglers.append(client_id)
            else:
                active.append(client_id)
        assert plan.unavailable == dropped
        assert plan.expected_fresh == len(active)
        scheduled = [c.client_id for c in plan.dispatched]
        assert scheduled == active + stragglers
        times = [c.time for c in plan.dispatched]
        assert times == sorted(times) and len(set(times)) == len(times)

    def test_instant_zero_rates_draws_nothing(self):
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        InstantArrivals().plan_round(list(range(8)), 0, 0, rng)
        assert rng.bit_generator.state == before

    def test_trace_processes_reject_rate_knobs(self):
        with pytest.raises(ValueError, match="rate knobs"):
            make_arrivals("tiered", dropout_rate=0.1)
        with pytest.raises(ValueError, match="unknown arrival process"):
            make_arrivals("bursty")

    def test_uniform_latency_is_order_invariant(self):
        process = UniformArrivals(seed=9)
        rng = np.random.default_rng(0)
        forward = process.plan_round([1, 2, 3, 4], 5, 100, rng)
        backward = process.plan_round([4, 3, 2, 1], 5, 100, rng)
        assert {c.client_id: c.time for c in forward.dispatched} == {
            c.client_id: c.time for c in backward.dispatched
        }

    def test_tiered_assignment_is_stable_and_weighted(self):
        process = TieredArrivals(seed=0)
        tiers = [process.tier_of(cid).name for cid in range(2000)]
        assert tiers == [process.tier_of(cid).name for cid in range(2000)]
        counts = {name: tiers.count(name) for name in set(tiers)}
        # The mid tier holds 55% of the fleet; it must dominate.
        assert max(counts, key=counts.get) == "mid"
        assert len(counts) == 4

    def test_tiered_slow_tiers_straggle(self):
        process = TieredArrivals(seed=3)
        delays: dict[str, list[int]] = {}
        for cid in range(500):
            delay = process.completion_delay(cid, 0)
            if delay is not None:
                delays.setdefault(process.tier_of(cid).name, []).append(delay)
        assert np.mean(delays["iot"]) > np.mean(delays["flagship"])

    def test_diurnal_cycle_gates_availability(self):
        cycle = DiurnalCycle(period_s=10.0, duty_cycle=0.5)
        available = [
            cycle.available(cid, 0, seed=0) for cid in range(400)
        ]
        # Phase offsets spread the fleet: roughly half reachable at t=0.
        fraction = np.mean(available)
        assert 0.3 < fraction < 0.7
        # A client flips availability somewhere within one period.
        for cid in range(10):
            states = {
                cycle.available(cid, ticks(t / 10), seed=0)
                for t in range(100)
            }
            assert states == {True, False}

    def test_diurnal_fleet_still_makes_progress(self):
        server = Server(
            Module(),
            [StubClient(i) for i in range(16)],
            arrivals="tiered-diurnal",
            cutoff=TimeCutoff(ticks(2.0), min_arrivals=1),
            seed=4,
        )
        records = server.run(3)
        assert any(r.participant_ids for r in records)
        assert any(r.timing["unavailable"] for r in records), (
            "a 50% duty cycle should leave some selected clients offline"
        )
