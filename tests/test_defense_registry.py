"""The pluggable defense registry: registration, spec grammar, seeding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.augment import UnknownSuiteError, suite_by_name
from repro.defense import (
    DefenseKnob,
    DefensePipeline,
    DefenseRegistryError,
    DefenseSpec,
    DefenseSpecError,
    DPSGDDefense,
    DuplicateDefenseError,
    GradientPruningDefense,
    NoDefense,
    OasisDefense,
    TransformReplaceDefense,
    UnknownDefenseError,
    available_defenses,
    canonical_spec,
    defense_lineup,
    defense_spec,
    make_defense,
    parse_defense_spec,
    register_defense,
    split_spec_list,
    unregister_defense,
    validate_defense_spec,
)
from repro.utils.rng import derive_seed

BUILTIN_DEFENSES = (
    "WO", "MR", "mR", "SH", "HFlip", "VFlip", "MR+SH",
    "dpsgd", "dpfed", "prune", "ats", "tabular",
)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTIN_DEFENSES) <= set(available_defenses())

    def test_unknown_name_raises_with_available_list(self):
        with pytest.raises(UnknownDefenseError) as excinfo:
            defense_spec("definitely-not-a-defense")
        message = str(excinfo.value)
        for name in BUILTIN_DEFENSES:
            assert name in message

    def test_unknown_defense_error_is_a_value_error(self):
        # The harnesses' structured-failure capture catches ValueError.
        with pytest.raises(ValueError):
            make_defense("nope")

    def test_duplicate_registration_refused(self):
        spec = DefenseSpec(name="dup_defense", factory=NoDefense)
        register_defense(spec)
        try:
            with pytest.raises(DuplicateDefenseError):
                register_defense(spec)
            register_defense(spec, replace=True)
        finally:
            unregister_defense("dup_defense")
        assert "dup_defense" not in available_defenses()

    def test_unregister_unknown_raises(self):
        with pytest.raises(UnknownDefenseError):
            unregister_defense("never_registered")

    def test_grammar_characters_refused_in_names(self):
        for bad in ("", "bad name", "a>b", "a(b)", "a=b", "a,b"):
            with pytest.raises(DefenseRegistryError):
                register_defense(DefenseSpec(name=bad, factory=NoDefense))

    def test_plus_allowed_in_names(self):
        # Suite unions like MR+SH are first-class registered names.
        assert defense_spec("MR+SH").name == "MR+SH"

    def test_specs_declare_stage_and_stochasticity(self):
        assert defense_spec("WO").stage == "none"
        assert defense_spec("MR").stage == "batch"
        assert defense_spec("dpsgd").stage == "gradient"
        assert defense_spec("dpsgd").stochastic
        assert not defense_spec("prune").stochastic


class TestSpecGrammar:
    def test_single_stage(self):
        assert parse_defense_spec("dpsgd") == [("dpsgd", {})]

    def test_stage_with_knobs(self):
        assert parse_defense_spec(
            "dpsgd(clip_norm=2.0, noise_multiplier=0.5)"
        ) == [("dpsgd", {"clip_norm": 2.0, "noise_multiplier": 0.5})]

    def test_chain(self):
        assert parse_defense_spec("MR+SH>dpsgd(noise_multiplier=0.5)") == [
            ("MR+SH", {}),
            ("dpsgd", {"noise_multiplier": 0.5}),
        ]

    def test_bare_word_values_are_strings(self):
        assert parse_defense_spec("ats(suite=MR)") == [("ats", {"suite": "MR"})]

    def test_literal_values_parse(self):
        [(_, kwargs)] = parse_defense_spec(
            "MR(include_original=False)"
        )
        assert kwargs == {"include_original": False}

    def test_empty_stage_rejected(self):
        for bad in ("", ">", "MR>", ">dpsgd", "MR>>dpsgd"):
            with pytest.raises(DefenseSpecError):
                parse_defense_spec(bad)

    def test_malformed_knobs_rejected(self):
        with pytest.raises(DefenseSpecError):
            parse_defense_spec("dpsgd(noise)")

    def test_canonical_spec_strips_whitespace(self):
        assert canonical_spec(" MR > dpsgd ") == "MR>dpsgd"

    def test_canonical_spec_normalizes_knob_order_and_spacing(self):
        # The seed-derivation key: every spelling of one configuration
        # must canonicalize identically, or reformatting a --defenses
        # string between a run and its --resume would move DP noise.
        spellings = (
            "dpsgd(clip_norm=2.0,noise_multiplier=0.5)",
            "dpsgd(noise_multiplier=0.5, clip_norm=2.0)",
            " dpsgd( clip_norm = 2.0 , noise_multiplier = 0.5 ) ",
        )
        canonicals = {canonical_spec(spelling) for spelling in spellings}
        assert len(canonicals) == 1

    def test_canonical_spellings_draw_identical_noise(self):
        grads = {"w": np.zeros(64)}
        a = make_defense("dpfed(noise_multiplier=0.2,clip_norm=1.0)", seed=3)
        b = make_defense("dpfed(clip_norm=1.0, noise_multiplier=0.2)", seed=3)
        np.testing.assert_array_equal(
            a.process_gradients(grads, np.random.default_rng())["w"],
            b.process_gradients(grads, np.random.default_rng())["w"],
        )

    def test_split_spec_list_respects_parens(self):
        assert split_spec_list(
            "WO,dpsgd(clip_norm=2.0,noise_multiplier=0.5),MR>dpsgd"
        ) == ["WO", "dpsgd(clip_norm=2.0,noise_multiplier=0.5)", "MR>dpsgd"]

    def test_split_spec_list_unbalanced_raises(self):
        with pytest.raises(DefenseSpecError):
            split_spec_list("dpsgd(clip_norm=2.0")
        with pytest.raises(DefenseSpecError):
            split_spec_list("dpsgd)")

    def test_validate_fails_fast_on_unknown_stage_and_knob(self):
        with pytest.raises(UnknownDefenseError):
            validate_defense_spec("MR>typo")
        with pytest.raises(DefenseRegistryError, match="declared knobs"):
            validate_defense_spec("dpsgd(bogus=1)")
        validate_defense_spec("MR>dpsgd(noise_multiplier=0.5)")  # clean

    def test_validate_fails_fast_on_everything_make_defense_would(self):
        # The fail-fast check must be exactly as strict as the build: an
        # invalid knob *value* and an unsatisfiable two-clipper pipeline
        # both abort at validation, not one cell into a sweep.
        with pytest.raises(ValueError):
            validate_defense_spec("dpsgd(clip_norm=-1.0)")
        with pytest.raises(ValueError, match="per_sample_clip"):
            validate_defense_spec("dpsgd>dpsgd")

    def test_factory_rejections_normalize_to_value_errors(self):
        # An unknown suite knob raises KeyError-family UnknownSuiteError
        # inside the factory; the registry must surface it as its
        # ValueError family so `except ValueError` consumers (the CLI,
        # structured-failure capture) handle every bad spec uniformly.
        with pytest.raises(DefenseSpecError, match="XYZ"):
            validate_defense_spec("ats(suite=XYZ)")
        with pytest.raises(ValueError):
            make_defense("ats(suite=XYZ)")
        with pytest.raises(DefenseSpecError, match="cannot build stage"):
            make_defense("dpsgd(clip_norm='abc')")


class TestMakeDefense:
    def test_wo_is_no_defense(self):
        assert isinstance(make_defense("WO"), NoDefense)

    def test_suite_names_build_oasis(self):
        defense = make_defense("MR+SH")
        assert isinstance(defense, OasisDefense)
        assert defense.expansion_factor() == 7

    def test_single_stage_returns_bare_defense(self):
        assert isinstance(make_defense("prune"), GradientPruningDefense)

    def test_knob_passthrough(self):
        defense = make_defense("dpsgd(noise_multiplier=0.5)")
        assert isinstance(defense, DPSGDDefense)
        assert defense.noise_multiplier == pytest.approx(0.5)

    def test_keyword_knobs_merge_and_override(self):
        defense = make_defense("dpsgd(noise_multiplier=0.5)", clip_norm=2.0)
        assert defense.clip_norm == pytest.approx(2.0)
        assert defense.noise_multiplier == pytest.approx(0.5)

    def test_keyword_knobs_refused_for_chains(self):
        with pytest.raises(DefenseRegistryError, match="ambiguous"):
            make_defense("MR>dpsgd", clip_norm=2.0)

    def test_undeclared_knob_raises(self):
        with pytest.raises(DefenseRegistryError, match="declared knobs"):
            make_defense("prune", bogus=3)

    def test_chain_builds_pipeline_in_order(self):
        defense = make_defense("MR>dpsgd(noise_multiplier=0.5)")
        assert isinstance(defense, DefensePipeline)
        assert isinstance(defense.stages[0], OasisDefense)
        assert isinstance(defense.stages[1], DPSGDDefense)
        assert defense.per_sample_clip == pytest.approx(1.0)

    def test_instance_passes_through(self):
        defense = GradientPruningDefense(0.5)
        assert make_defense(defense) is defense

    def test_instance_with_knobs_refused(self):
        with pytest.raises(DefenseRegistryError):
            make_defense(NoDefense(), prune_fraction=0.5)

    def test_lineup_builds_and_orders(self):
        lineup = defense_lineup(["WO", "MR", "dpsgd", "MR>dpsgd"])
        assert isinstance(lineup[0], NoDefense)
        assert isinstance(lineup[1], OasisDefense)
        assert isinstance(lineup[2], DPSGDDefense)
        assert isinstance(lineup[3], DefensePipeline)

    def test_lineup_unknown_name_lists_available(self):
        with pytest.raises(UnknownDefenseError, match="registered defenses"):
            defense_lineup(["WO", "Gaussian"])


class TestSeedDerivation:
    """Stochastic defenses draw order/worker-invariant private streams."""

    def _ats_choices(self, seed):
        defense = make_defense("ats", seed=seed)
        images = np.linspace(0, 1, 4 * 3 * 8 * 8).reshape(4, 3, 8, 8)
        labels = np.arange(4)
        # A throwaway caller generator: a reseeded defense must ignore it.
        out, _ = defense.process_batch(images, labels, np.random.default_rng())
        return out

    def test_same_seed_same_draws(self):
        np.testing.assert_array_equal(
            self._ats_choices(5), self._ats_choices(5)
        )

    def test_different_seed_different_draws(self):
        assert not np.array_equal(self._ats_choices(5), self._ats_choices(6))

    def test_unseeded_defense_uses_caller_generator(self):
        defense = make_defense("dpfed")
        grads = {"w": np.zeros(64)}
        a = defense.process_gradients(grads, np.random.default_rng(3))["w"]
        b = defense.process_gradients(grads, np.random.default_rng(3))["w"]
        np.testing.assert_array_equal(a, b)

    def test_seeded_dp_noise_reproducible(self):
        grads = {"w": np.zeros(64)}
        a = make_defense("dpfed", seed=9).process_gradients(
            grads, np.random.default_rng()
        )["w"]
        b = make_defense("dpfed", seed=9).process_gradients(
            grads, np.random.default_rng()
        )["w"]
        np.testing.assert_array_equal(a, b)
        assert not np.allclose(a, 0.0)

    def test_pipeline_stages_draw_independent_streams(self):
        # Two identical stochastic stages of one pipeline must not share a
        # stream: each gets a seed keyed by its index (and name).
        pipeline = make_defense("dpfed>dpfed", seed=4)
        grads = {"w": np.zeros(64)}
        throwaway = np.random.default_rng()
        first = pipeline.stages[0].process_gradients(grads, throwaway)["w"]
        second = pipeline.stages[1].process_gradients(grads, throwaway)["w"]
        assert not np.allclose(first, second)

    def test_make_defense_seeding_matches_manual_reseed(self):
        grads = {"w": np.zeros(64)}
        via_registry = make_defense("dpfed>dpfed", seed=4).process_gradients(
            grads, np.random.default_rng()
        )["w"]
        manual = DefensePipeline([make_defense("dpfed"), make_defense("dpfed")])
        manual.reseed(derive_seed(4, "defense", "dpfed>dpfed"))
        via_manual = manual.process_gradients(grads, np.random.default_rng())["w"]
        np.testing.assert_array_equal(via_registry, via_manual)


class TestSuiteLookupErrors:
    def test_suite_by_name_unknown_lists_available(self):
        with pytest.raises(UnknownSuiteError) as excinfo:
            suite_by_name("Gaussian")
        message = str(excinfo.value)
        for name in ("MR", "mR", "SH", "HFlip", "VFlip", "MR+SH"):
            assert name in message

    def test_unknown_suite_error_is_a_key_error(self):
        # The historical contract of suite_by_name.
        with pytest.raises(KeyError):
            suite_by_name("Gaussian")

    def test_transform_replace_typo_suite_lists_available(self):
        with pytest.raises(UnknownSuiteError, match="available suites"):
            TransformReplaceDefense(suite="Gaussian")
