"""Curious-Abandon-Honesty attack: trap tuning, inversion, dedup, defense."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import CAHAttack, ImprintedModel, activation_matrix
from repro.defense import OasisDefense
from repro.fl import compute_batch_gradients
from repro.metrics import average_attack_psnr, per_image_best_psnr
from repro.nn import CrossEntropyLoss


@pytest.fixture
def crafted(cifar_like):
    num_neurons = 150
    model = ImprintedModel(
        cifar_like.image_shape, num_neurons, cifar_like.num_classes,
        rng=np.random.default_rng(21),
    )
    attack = CAHAttack(num_neurons, activation_probability=0.05, seed=9)
    attack.calibrate_from_public_data(cifar_like.images[:120])
    attack.craft(model)
    return model, attack


class TestCrafting:
    def test_activation_probability_validated(self):
        with pytest.raises(ValueError):
            CAHAttack(10, activation_probability=0.0)
        with pytest.raises(ValueError):
            CAHAttack(10, activation_probability=1.0)

    def test_neuron_count_must_match(self, cifar_like):
        model = ImprintedModel(cifar_like.image_shape, 16, 10)
        with pytest.raises(ValueError):
            CAHAttack(17).craft(model)

    def test_empirical_activation_rate_close_to_target(self, crafted, cifar_like):
        model, attack = crafted
        weight, bias = model.imprint_parameters()
        flat = cifar_like.images.reshape(len(cifar_like), -1).astype(np.float64)
        rate = activation_matrix(weight, bias, flat).mean()
        assert rate == pytest.approx(attack.activation_probability, abs=0.03)

    def test_trap_rows_are_distinct_directions(self, crafted):
        weight, _ = crafted[0].imprint_parameters()
        # Unlike RTF, rows are (nearly) orthogonal random directions.
        gram = weight @ weight.T
        off_diag = gram - np.diag(np.diag(gram))
        assert np.abs(off_diag).max() < 0.5 * np.diag(gram).min()

    def test_seed_determinism(self, cifar_like):
        models = []
        for _ in range(2):
            model = ImprintedModel(cifar_like.image_shape, 32, 10,
                                   rng=np.random.default_rng(0))
            attack = CAHAttack(32, seed=5)
            attack.calibrate_from_public_data(cifar_like.images[:50])
            attack.craft(model)
            models.append(model.imprint_parameters())
        np.testing.assert_array_equal(models[0][0], models[1][0])
        np.testing.assert_array_equal(models[0][1], models[1][1])

    def test_gaussian_fallback_without_public_data(self, cifar_like):
        model = ImprintedModel(cifar_like.image_shape, 32, 10)
        attack = CAHAttack(32, pixel_mean=0.5, pixel_std=0.2)
        attack.craft(model)  # must not raise
        _, bias = model.imprint_parameters()
        assert np.all(np.isfinite(bias))

    def test_reconstruct_before_craft_raises(self):
        with pytest.raises(RuntimeError):
            CAHAttack(4).reconstruct(
                {"imprint.weight": np.zeros((4, 2)), "imprint.bias": np.zeros(4)}
            )


class TestReconstruction:
    def test_sole_activations_reconstructed_perfectly(self, crafted, cifar_like, rng):
        model, attack = crafted
        images, labels = cifar_like.sample_batch(4, rng)
        weight, bias = model.imprint_parameters()
        acts = activation_matrix(weight, bias, images.reshape(4, -1))
        sole_neurons = np.flatnonzero(acts.sum(axis=0) == 1)
        if sole_neurons.size == 0:
            pytest.skip("no sole activation in this draw")
        grads, _ = compute_batch_gradients(model, CrossEntropyLoss(), images, labels)
        result = attack.reconstruct(grads)
        per_image = per_image_best_psnr(images, result.images)
        caught = np.flatnonzero(acts[:, sole_neurons].any(axis=1))
        for idx in caught:
            assert per_image[idx] > 120.0

    def test_deduplication_collapses_duplicates(self, crafted, cifar_like, rng):
        model, attack = crafted
        images, labels = cifar_like.sample_batch(2, rng)
        grads, _ = compute_batch_gradients(model, CrossEntropyLoss(), images, labels)
        attack.deduplicate = True
        deduped = attack.reconstruct(grads)
        attack.deduplicate = False
        raw = attack.reconstruct(grads)
        assert len(deduped) <= len(raw)

    def test_empty_gradients(self, crafted):
        model, attack = crafted
        result = attack.reconstruct(
            {
                "imprint.weight": np.zeros(model.imprint.weight.shape),
                "imprint.bias": np.zeros(model.imprint.bias.shape),
            }
        )
        assert len(result) == 0
        assert result.reason == "no trap neuron fired"


class TestDegenerateCalibration:
    """Guards for public data that makes quantile tuning meaningless.

    Regression: these inputs used to flow straight into the quantile
    placement and produce biases where every neuron fires (or none do),
    so reconstruct() emitted batch-mean garbage or raised deep inside
    numpy.  Now craft() disarms the layer and reconstruct() returns an
    empty result with a structured reason.
    """

    def degenerate_attack(self, cifar_like, public):
        attack = CAHAttack(32, seed=3)
        attack.calibrate_from_public_data(public)
        model = ImprintedModel(cifar_like.image_shape, 32, cifar_like.num_classes,
                               rng=np.random.default_rng(0))
        attack.craft(model)
        return model, attack

    def run_round(self, model, attack, cifar_like, rng):
        images, labels = cifar_like.sample_batch(4, rng)
        grads, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), images, labels
        )
        return attack.reconstruct(grads)

    def test_identical_public_samples(self, cifar_like, rng):
        # A "batch" of one image repeated: zero projection spread, so the
        # empirical quantile pins every bias to the single observed value.
        public = np.repeat(cifar_like.images[:1], 16, axis=0)
        model, attack = self.degenerate_attack(cifar_like, public)
        result = self.run_round(model, attack, cifar_like, rng)
        assert len(result) == 0
        assert "degenerate trap calibration" in result.reason
        # The disarmed layer is inert, not malformed.
        weight, bias = model.imprint_parameters()
        assert np.all(weight == 0.0)
        assert np.all(np.isfinite(bias))

    def test_non_finite_public_data(self, cifar_like, rng):
        public = cifar_like.images[:16].copy()
        public[3, 0, 0, 0] = np.nan
        model, attack = self.degenerate_attack(cifar_like, public)
        result = self.run_round(model, attack, cifar_like, rng)
        assert len(result) == 0
        assert "non-finite" in result.reason

    def test_every_trap_firing_returns_reasoned_empty(self, cifar_like):
        # All-positive bias gradients on every neuron: each trap caught
        # the whole batch, so each inversion is the same batch mean.
        attack = CAHAttack(32, seed=3)
        attack.calibrate_from_public_data(cifar_like.images[:64])
        model = ImprintedModel(cifar_like.image_shape, 32, cifar_like.num_classes,
                               rng=np.random.default_rng(0))
        attack.craft(model)
        grads = {
            "imprint.weight": np.ones(model.imprint.weight.shape),
            "imprint.bias": np.full(model.imprint.bias.shape, 0.5),
        }
        result = attack.reconstruct(grads)
        assert len(result) == 0
        assert "near-total activation" in result.reason

    def test_healthy_calibration_unaffected(self, cifar_like, rng):
        model, attack = self.degenerate_attack(
            cifar_like, cifar_like.images[:64]
        )
        result = self.run_round(model, attack, cifar_like, rng)
        assert attack._calibration_reason is None
        assert result.reason is None or len(result) == 0


class TestAgainstOasis:
    def test_mrsh_reduces_average_psnr(self, crafted, cifar_like, rng):
        model, attack = crafted
        images, labels = cifar_like.sample_batch(8, rng)
        grads, _ = compute_batch_gradients(model, CrossEntropyLoss(), images, labels)
        undefended = average_attack_psnr(images, attack.reconstruct(grads).images)
        expanded, expanded_labels = OasisDefense("MR+SH").expand_batch(images, labels)
        grads, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), expanded, expanded_labels
        )
        defended = average_attack_psnr(images, attack.reconstruct(grads).images)
        assert defended < undefended - 15.0

    def test_occupancy_rises_with_expansion(self, crafted, cifar_like, rng):
        # The defense mechanism vs CAH: D' raises trap occupancy, so sole
        # activations become rarer.
        model, attack = crafted
        images, labels = cifar_like.sample_batch(8, rng)
        weight, bias = model.imprint_parameters()
        acts_plain = activation_matrix(weight, bias, images.reshape(8, -1))
        expanded, _ = OasisDefense("MR+SH").expand_batch(images, labels)
        acts_exp = activation_matrix(
            weight, bias, expanded.reshape(len(expanded), -1)
        )
        sole_plain = (acts_plain.sum(axis=0) == 1).sum()
        sole_exp = (acts_exp.sum(axis=0) == 1).sum()
        # Fraction of *batch images* with a private neuron must not grow.
        assert sole_exp / len(expanded) <= sole_plain / len(images) + 1e-9
