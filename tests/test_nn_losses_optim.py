"""Losses (cross entropy, MSE, logistic) and optimizers (SGD, Adam)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    CrossEntropyLoss,
    Linear,
    LogisticLoss,
    MSELoss,
    Parameter,
    SGD,
    one_hot,
)
from repro.tensor import Tensor


class TestOneHot:
    def test_encoding(self):
        out = one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_shape(self):
        assert one_hot(np.arange(5), 7).shape == (5, 7)


class TestCrossEntropy:
    def test_matches_manual_softmax_ce(self, rng):
        logits = rng.standard_normal((6, 4))
        labels = rng.integers(0, 4, 6)
        loss = CrossEntropyLoss()(Tensor(logits), labels).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(6), labels].mean()
        assert np.isclose(loss, expected, atol=1e-12)

    def test_sum_reduction(self, rng):
        logits = rng.standard_normal((4, 3))
        labels = rng.integers(0, 3, 4)
        mean_loss = CrossEntropyLoss("mean")(Tensor(logits), labels).item()
        sum_loss = CrossEntropyLoss("sum")(Tensor(logits), labels).item()
        assert np.isclose(sum_loss, 4 * mean_loss)

    def test_invalid_reduction(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss("median")

    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss = CrossEntropyLoss()(Tensor(logits), np.array([0, 1])).item()
        assert loss < 1e-10

    def test_gradient_is_softmax_minus_onehot(self, rng):
        logits = rng.standard_normal((3, 5))
        labels = np.array([1, 0, 4])
        t = Tensor(logits, requires_grad=True)
        CrossEntropyLoss("sum")(t, labels).backward()
        shifted = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
        expected = probs - one_hot(labels, 5)
        np.testing.assert_allclose(t.grad, expected, atol=1e-10)

    def test_logistic_loss_aliases_ce(self, rng):
        logits = rng.standard_normal((4, 3))
        labels = rng.integers(0, 3, 4)
        a = CrossEntropyLoss()(Tensor(logits), labels).item()
        b = LogisticLoss()(Tensor(logits), labels).item()
        assert np.isclose(a, b)


class TestMSE:
    def test_value(self):
        loss = MSELoss()(Tensor([1.0, 2.0]), np.array([0.0, 0.0])).item()
        assert np.isclose(loss, 2.5)

    def test_sum_reduction(self):
        loss = MSELoss("sum")(Tensor([1.0, 2.0]), np.array([0.0, 0.0])).item()
        assert np.isclose(loss, 5.0)

    def test_accepts_tensor_target(self):
        loss = MSELoss()(Tensor([1.0]), Tensor([1.0])).item()
        assert loss == 0.0


class TestSGD:
    def test_plain_step(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_weight_decay(self):
        p = Parameter(np.array([2.0]))
        p.grad = np.array([0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()
        np.testing.assert_allclose(p.data, [-1.0])
        p.grad = np.array([1.0])
        opt.step()  # velocity = 0.9 * 1 + 1 = 1.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_skips_gradless_params(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_zero_grad(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([1.0])
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_first_step_equals_lr_sign(self):
        # With bias correction, the first Adam step is ~lr * sign(grad).
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.01)
        p.grad = np.array([3.0])
        opt.step()
        np.testing.assert_allclose(p.data, [-0.01], atol=1e-6)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            p.grad = 2.0 * p.data  # d/dp p^2
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_weight_decay_pulls_to_zero(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.05, weight_decay=1.0)
        for _ in range(100):
            p.grad = np.zeros(1)
            opt.step()
        assert abs(p.data[0]) < 0.5

    def test_trains_linear_regression(self, rng):
        true_w = rng.standard_normal((3,))
        x = rng.standard_normal((64, 3))
        y = x @ true_w
        layer = Linear(3, 1, rng=np.random.default_rng(0))
        opt = Adam(layer.parameters(), lr=0.05)
        loss_fn = MSELoss()
        for _ in range(300):
            opt.zero_grad()
            pred = layer(Tensor(x)).reshape(-1)
            loss = loss_fn(pred, y)
            loss.backward()
            opt.step()
        np.testing.assert_allclose(layer.weight.data.ravel(), true_w, atol=0.05)
