"""Gradient computation and FedAvg aggregation (paper Eq. 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.defense import OasisDefense
from repro.fl import (
    average_gradients,
    compute_batch_gradients,
    compute_defended_update,
    per_sample_gradients,
)
from repro.nn import CrossEntropyLoss, MLP


@pytest.fixture
def model():
    return MLP([8, 6, 3], rng=np.random.default_rng(0))


class TestComputeBatchGradients:
    def test_returns_all_parameters(self, model, rng):
        grads, loss = compute_batch_gradients(
            model, CrossEntropyLoss(), rng.random((4, 8)), rng.integers(0, 3, 4)
        )
        assert set(grads) == {name for name, _ in model.named_parameters()}
        assert np.isfinite(loss)

    def test_zeroes_stale_gradients_first(self, model, rng):
        x, y = rng.random((4, 8)), rng.integers(0, 3, 4)
        first, _ = compute_batch_gradients(model, CrossEntropyLoss(), x, y)
        second, _ = compute_batch_gradients(model, CrossEntropyLoss(), x, y)
        for name in first:
            np.testing.assert_allclose(first[name], second[name])

    def test_mean_reduction_scales_with_batch(self, model, rng):
        x, y = rng.random((4, 8)), rng.integers(0, 3, 4)
        sum_grads, _ = compute_batch_gradients(model, CrossEntropyLoss("sum"), x, y)
        mean_grads, _ = compute_batch_gradients(model, CrossEntropyLoss("mean"), x, y)
        for name in sum_grads:
            np.testing.assert_allclose(sum_grads[name], 4.0 * mean_grads[name],
                                       atol=1e-10)


class TestPerSampleGradients:
    def test_per_sample_sums_to_batch(self, model, rng):
        x, y = rng.random((3, 8)), rng.integers(0, 3, 3)
        batch_grads, _ = compute_batch_gradients(model, CrossEntropyLoss("sum"), x, y)
        per_sample = per_sample_gradients(model, CrossEntropyLoss("sum"), x, y)
        for name in batch_grads:
            total = sum(g[name] for g in per_sample)
            np.testing.assert_allclose(batch_grads[name], total, atol=1e-10)

    def test_count(self, model, rng):
        per_sample = per_sample_gradients(
            model, CrossEntropyLoss(), rng.random((5, 8)), rng.integers(0, 3, 5)
        )
        assert len(per_sample) == 5


class TestAverageGradients:
    def test_uniform_average(self):
        updates = [{"w": np.array([1.0])}, {"w": np.array([3.0])}]
        out = average_gradients(updates)
        np.testing.assert_allclose(out["w"], [2.0])

    def test_weighted_average(self):
        updates = [{"w": np.array([0.0])}, {"w": np.array([4.0])}]
        out = average_gradients(updates, weights=[3.0, 1.0])
        np.testing.assert_allclose(out["w"], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_gradients([])

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            average_gradients([{"w": np.zeros(1)}], weights=[1.0, 2.0])

    def test_mismatched_keys_rejected(self):
        with pytest.raises(KeyError):
            average_gradients([{"w": np.zeros(1)}, {"v": np.zeros(1)}])

    def test_aggregation_is_linear(self, rng):
        # FedAvg of K identical updates equals the update (Eq. 1 sanity).
        update = {"w": rng.standard_normal(5)}
        out = average_gradients([update] * 7)
        np.testing.assert_allclose(out["w"], update["w"])

    def test_does_not_mutate_inputs(self):
        updates = [{"w": np.array([1.0])}, {"w": np.array([3.0])}]
        average_gradients(updates)
        np.testing.assert_array_equal(updates[0]["w"], [1.0])

    def test_all_zero_weights_rejected(self):
        # Regression: an all-zero weight total used to divide by zero and
        # silently fill the aggregate with nan/inf.
        updates = [{"w": np.array([1.0])}, {"w": np.array([3.0])}]
        with pytest.raises(ValueError):
            average_gradients(updates, weights=[0.0, 0.0])


class TestDefendedUpdateWeighting:
    """Regression: OASIS expansion must not inflate the FedAvg weight."""

    def _compute(self, defense, seed=0):
        rng = np.random.default_rng(seed)
        model = MLP([48, 6, 3], rng=np.random.default_rng(1))
        images = rng.random((4, 3, 4, 4))
        labels = rng.integers(0, 3, 4)
        return compute_defended_update(
            model, CrossEntropyLoss(), images, labels, defense,
            np.random.default_rng(2),
        )

    def test_defended_reports_original_batch_size(self):
        from repro.defense import NoDefense

        _, _, defended_count = self._compute(OasisDefense("MR"))
        _, _, undefended_count = self._compute(NoDefense())
        assert defended_count == undefended_count == 4

    def test_fedavg_weight_parity(self):
        # A defended and an undefended client reporting the same batch size
        # must carry identical weight in an example-weighted FedAvg round.
        defended_grads, _, defended_count = self._compute(OasisDefense("MR+SH"))
        from repro.defense import NoDefense

        plain_grads, _, plain_count = self._compute(NoDefense(), seed=3)
        aggregated = average_gradients(
            [defended_grads, plain_grads], weights=[defended_count, plain_count]
        )
        expected = average_gradients([defended_grads, plain_grads])
        for name in aggregated:
            np.testing.assert_allclose(aggregated[name], expected[name])
