"""The `python -m repro.experiments.sweep` command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments.sweep import GRID_PRESETS, SweepStore, main


def test_smoke_grid_runs_and_persists(tmp_path, capsys):
    store = tmp_path / "sweep.json"
    exit_code = main(["--grid", "smoke", "--store", str(store)])
    assert exit_code == 0
    cells = SweepStore(store)
    assert len(cells) == 2
    output = capsys.readouterr().out
    assert "2 computed, 0 cached, 0 failed" in output
    assert "headline ordering holds" in output
    assert "done in" in output  # per-cell progress lines


def test_existing_store_requires_resume_flag(tmp_path, capsys):
    store = tmp_path / "sweep.json"
    assert main(["--grid", "smoke", "--store", str(store)]) == 0
    with pytest.raises(SystemExit) as excinfo:
        main(["--grid", "smoke", "--store", str(store)])
    assert excinfo.value.code == 2
    assert "--resume" in capsys.readouterr().err


def test_leftover_shards_also_require_resume_flag(tmp_path, capsys):
    # A killed parallel run may leave only shards (no main store yet);
    # starting "fresh" over them must be refused too, or their results
    # would be silently absorbed into the new run.
    store = tmp_path / "sweep.json"
    (tmp_path / "sweep.json.shards").mkdir()
    with pytest.raises(SystemExit) as excinfo:
        main(["--grid", "smoke", "--store", str(store)])
    assert excinfo.value.code == 2
    assert "shards" in capsys.readouterr().err


def test_resume_serves_finished_cells_from_store(tmp_path, capsys):
    store = tmp_path / "sweep.json"
    assert main(["--grid", "smoke", "--store", str(store)]) == 0
    before = store.read_bytes()
    assert main(["--grid", "smoke", "--store", str(store), "--resume"]) == 0
    assert store.read_bytes() == before
    assert "0 computed, 2 cached, 0 failed" in capsys.readouterr().out


def test_workers_flag_matches_serial_store(tmp_path):
    serial = tmp_path / "serial.json"
    parallel = tmp_path / "parallel.json"
    assert main(["--grid", "smoke", "--store", str(serial)]) == 0
    assert (
        main(["--grid", "smoke", "--store", str(parallel), "--workers", "2"])
        == 0
    )
    assert serial.read_bytes() == parallel.read_bytes()


def test_workers_auto_matches_serial_store(tmp_path):
    # "auto" sizes the pool to the host; whatever it picks, the compacted
    # store must be byte-identical to the serial run.
    serial = tmp_path / "serial.json"
    auto = tmp_path / "auto.json"
    assert main(["--grid", "smoke", "--store", str(serial)]) == 0
    assert (
        main(["--grid", "smoke", "--store", str(auto), "--workers", "auto"])
        == 0
    )
    assert serial.read_bytes() == auto.read_bytes()


def test_workers_flag_rejects_garbage(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([
            "--grid", "smoke",
            "--store", str(tmp_path / "x.json"),
            "--workers", "many",
        ])
    assert excinfo.value.code == 2
    assert "--workers" in capsys.readouterr().err


def test_seed_flag_changes_results(tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    assert main(["--grid", "smoke", "--store", str(a)]) == 0
    assert main(["--grid", "smoke", "--store", str(b), "--seed", "7"]) == 0
    assert a.read_bytes() != b.read_bytes()


def test_every_preset_builds_a_runner(tmp_path):
    for name, build in GRID_PRESETS.items():
        runner = build(seed=0, rounds=1, store=tmp_path / f"{name}.json")
        assert len(runner.cells()) >= 2


def test_attacks_flag_runs_the_whole_zoo(tmp_path, capsys):
    store = tmp_path / "zoo.json"
    exit_code = main([
        "--grid", "smoke",
        "--attacks", "rtf,cah,linear,qbi,loki",
        "--store", str(store),
    ])
    assert exit_code == 0
    cells = SweepStore(store)
    assert len(cells) == 10  # 5 attacks x (WO, MR) x full participation
    attacks = {key.split("|")[0] for key in cells.keys()}
    assert attacks == {"rtf", "cah", "linear", "qbi", "loki"}
    assert "10 computed" in capsys.readouterr().out


def test_attacks_flag_serial_parallel_stores_identical(tmp_path):
    serial, parallel = tmp_path / "s.json", tmp_path / "p.json"
    args = ["--grid", "smoke", "--attacks", "rtf,qbi,loki"]
    assert main(args + ["--store", str(serial)]) == 0
    assert main(args + ["--store", str(parallel), "--workers", "2"]) == 0
    assert serial.read_bytes() == parallel.read_bytes()


def test_unknown_attack_name_is_a_usage_error(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([
            "--grid", "smoke",
            "--attacks", "rtf,nope",
            "--store", str(tmp_path / "x.json"),
        ])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "nope" in err and "registered attacks" in err


def test_duplicate_attack_name_is_a_usage_error(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([
            "--grid", "smoke",
            "--attacks", "rtf,rtf",
            "--store", str(tmp_path / "x.json"),
        ])
    assert excinfo.value.code == 2
    assert "twice" in capsys.readouterr().err


def test_empty_attacks_flag_is_a_usage_error(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([
            "--grid", "smoke",
            "--attacks", " , ",
            "--store", str(tmp_path / "x.json"),
        ])
    assert excinfo.value.code == 2
    assert "at least one attack" in capsys.readouterr().err


def test_every_preset_accepts_attack_override(tmp_path):
    for name, build in GRID_PRESETS.items():
        runner = build(
            seed=0, rounds=1,
            store=tmp_path / f"{name}_override.json",
            attacks=("qbi", "loki"),
        )
        assert runner.attacks == ("qbi", "loki")
