"""Documentation guarantees: every public item carries a docstring.

Deliverable-level check: the library promises doc comments on all public
API; this test walks the package and enforces it so the promise cannot
silently rot.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.tensor",
    "repro.nn",
    "repro.data",
    "repro.augment",
    "repro.fl",
    "repro.attacks",
    "repro.defense",
    "repro.metrics",
    "repro.experiments",
    "repro.utils",
]


def _all_modules():
    modules = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        modules.append(package)
        for info in pkgutil.iter_modules(package.__path__, package_name + "."):
            modules.append(importlib.import_module(info.name))
    return modules


MODULES = _all_modules()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


def _public_members():
    members = []
    for module in MODULES:
        exported = getattr(module, "__all__", None)
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if exported is not None and name not in exported:
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", "").startswith("repro"):
                members.append((f"{module.__name__}.{name}", obj))
    return members


@pytest.mark.parametrize(
    "qualified_name,obj",
    _public_members(),
    ids=[name for name, _ in _public_members()],
)
def test_public_item_has_docstring(qualified_name, obj):
    assert inspect.getdoc(obj), f"{qualified_name} lacks a docstring"


def test_readme_and_design_exist():
    from pathlib import Path

    root = Path(repro.__file__).resolve().parents[2]
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        assert (root / name).exists(), f"{name} missing from repository root"
