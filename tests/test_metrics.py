"""PSNR / SSIM / accuracy metric correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import (
    MSE_FLOOR,
    PSNR_CEILING,
    accuracy,
    average_attack_psnr,
    best_match_psnr,
    image_entropy,
    match_reconstructions,
    mse,
    per_image_best_psnr,
    psnr,
    ssim,
    top_k_accuracy,
)


class TestMSE:
    def test_zero_for_identical(self, rng):
        x = rng.random((3, 4, 4))
        assert mse(x, x) == 0.0

    def test_known_value(self):
        assert mse(np.zeros(4), np.full(4, 2.0)) == 4.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))


class TestPSNR:
    def test_perfect_reconstruction_hits_ceiling(self, rng):
        x = rng.random((3, 8, 8))
        assert psnr(x, x) == pytest.approx(PSNR_CEILING)

    def test_ceiling_is_140db(self):
        assert PSNR_CEILING == pytest.approx(140.0)

    def test_known_value(self):
        # MSE = 0.01 with range 1 => 20 dB.
        a = np.zeros((2, 2))
        b = np.full((2, 2), 0.1)
        assert psnr(a, b) == pytest.approx(20.0)

    def test_monotone_in_error(self, rng):
        x = rng.random((3, 8, 8))
        small = x + 0.01
        large = x + 0.1
        assert psnr(x, small) > psnr(x, large)

    def test_data_range_scaling(self, rng):
        x = rng.random((4, 4))
        y = x + 0.05
        assert psnr(x, y, data_range=2.0) == pytest.approx(psnr(x, y) + 10 * np.log10(4))

    def test_float32_scale_floor(self):
        # Errors below float32 precision are reported at the ceiling, like
        # the paper's instrumentation would.
        x = np.zeros((4, 4))
        assert psnr(x, x + 1e-9) == pytest.approx(PSNR_CEILING)
        assert MSE_FLOOR == 1e-14


class TestMatching:
    def test_best_match_finds_correct_original(self, rng):
        originals = rng.random((5, 3, 4, 4))
        recon = originals[3] + 0.001
        score, index = best_match_psnr(originals, recon)
        assert index == 3
        assert score > 50.0

    def test_match_reconstructions(self, rng):
        originals = rng.random((3, 1, 4, 4))
        recons = originals[[2, 0]]
        matches = match_reconstructions(originals, recons)
        assert [m[0] for m in matches] == [2, 0]

    def test_average_attack_psnr_empty(self, rng):
        originals = rng.random((3, 1, 4, 4))
        assert average_attack_psnr(originals, np.empty((0, 1, 4, 4))) == 0.0

    def test_average_attack_psnr_perfect(self, rng):
        originals = rng.random((3, 1, 4, 4))
        assert average_attack_psnr(originals, originals) == pytest.approx(PSNR_CEILING)

    def test_per_image_best_psnr(self, rng):
        originals = rng.random((4, 1, 4, 4))
        recons = originals[[1]]
        scores = per_image_best_psnr(originals, recons)
        assert scores[1] == pytest.approx(PSNR_CEILING)
        assert all(scores[i] < PSNR_CEILING for i in (0, 2, 3))

    def test_per_image_best_empty(self, rng):
        originals = rng.random((2, 1, 4, 4))
        np.testing.assert_array_equal(
            per_image_best_psnr(originals, np.empty((0, 1, 4, 4))), np.zeros(2)
        )


class TestSSIM:
    def test_identical_is_one(self, rng):
        x = rng.random((3, 16, 16))
        assert ssim(x, x) == pytest.approx(1.0)

    def test_noise_lowers_ssim(self, rng):
        x = rng.random((3, 16, 16))
        noisy = np.clip(x + rng.normal(0, 0.3, x.shape), 0, 1)
        assert ssim(x, noisy) < 0.9

    def test_2d_input(self, rng):
        x = rng.random((16, 16))
        assert ssim(x, x) == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((3, 4, 4)), np.zeros((3, 5, 5)))

    def test_ordering_matches_distortion(self, rng):
        x = rng.random((3, 16, 16))
        mild = np.clip(x + rng.normal(0, 0.05, x.shape), 0, 1)
        harsh = np.clip(x + rng.normal(0, 0.5, x.shape), 0, 1)
        assert ssim(x, mild) > ssim(x, harsh)


class TestEntropy:
    def test_constant_image_zero_entropy(self):
        assert image_entropy(np.full((3, 8, 8), 0.5)) == 0.0

    def test_uniform_noise_high_entropy(self, rng):
        assert image_entropy(rng.random((3, 32, 32))) > 4.0


class TestAccuracy:
    def test_perfect(self):
        logits = np.eye(4)
        assert accuracy(logits, np.arange(4)) == 1.0

    def test_partial(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1])) == 0.5

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(3))

    def test_top_k(self):
        logits = np.array([[0.5, 0.3, 0.2], [0.1, 0.2, 0.7]])
        assert top_k_accuracy(logits, np.array([1, 0]), k=2) == 0.5
        assert top_k_accuracy(logits, np.array([0, 2]), k=1) == 1.0

    def test_top_k_caps_at_num_classes(self):
        logits = np.array([[0.5, 0.5]])
        assert top_k_accuracy(logits, np.array([0]), k=10) == 1.0
