"""PSNR / SSIM / accuracy metric correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import (
    MSE_FLOOR,
    PSNR_CEILING,
    accuracy,
    average_attack_psnr,
    best_match_psnr,
    image_entropy,
    match_reconstructions,
    mse,
    pairwise_mse,
    pairwise_psnr,
    per_image_best_psnr,
    psnr,
    ssim,
    top_k_accuracy,
)


class TestMSE:
    def test_zero_for_identical(self, rng):
        x = rng.random((3, 4, 4))
        assert mse(x, x) == 0.0

    def test_known_value(self):
        assert mse(np.zeros(4), np.full(4, 2.0)) == 4.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))


class TestPSNR:
    def test_perfect_reconstruction_hits_ceiling(self, rng):
        x = rng.random((3, 8, 8))
        assert psnr(x, x) == pytest.approx(PSNR_CEILING)

    def test_ceiling_is_140db(self):
        assert PSNR_CEILING == pytest.approx(140.0)

    def test_known_value(self):
        # MSE = 0.01 with range 1 => 20 dB.
        a = np.zeros((2, 2))
        b = np.full((2, 2), 0.1)
        assert psnr(a, b) == pytest.approx(20.0)

    def test_monotone_in_error(self, rng):
        x = rng.random((3, 8, 8))
        small = x + 0.01
        large = x + 0.1
        assert psnr(x, small) > psnr(x, large)

    def test_data_range_scaling(self, rng):
        x = rng.random((4, 4))
        y = x + 0.05
        assert psnr(x, y, data_range=2.0) == pytest.approx(psnr(x, y) + 10 * np.log10(4))

    def test_float32_scale_floor(self):
        # Errors below float32 precision are reported at the ceiling, like
        # the paper's instrumentation would.
        x = np.zeros((4, 4))
        assert psnr(x, x + 1e-9) == pytest.approx(PSNR_CEILING)
        assert MSE_FLOOR == 1e-14


class TestMatching:
    def test_best_match_finds_correct_original(self, rng):
        originals = rng.random((5, 3, 4, 4))
        recon = originals[3] + 0.001
        score, index = best_match_psnr(originals, recon)
        assert index == 3
        assert score > 50.0

    def test_match_reconstructions(self, rng):
        originals = rng.random((3, 1, 4, 4))
        recons = originals[[2, 0]]
        matches = match_reconstructions(originals, recons)
        assert [m[0] for m in matches] == [2, 0]

    def test_average_attack_psnr_empty(self, rng):
        originals = rng.random((3, 1, 4, 4))
        assert average_attack_psnr(originals, np.empty((0, 1, 4, 4))) == 0.0

    def test_average_attack_psnr_perfect(self, rng):
        originals = rng.random((3, 1, 4, 4))
        assert average_attack_psnr(originals, originals) == pytest.approx(PSNR_CEILING)

    def test_per_image_best_psnr(self, rng):
        originals = rng.random((4, 1, 4, 4))
        recons = originals[[1]]
        scores = per_image_best_psnr(originals, recons)
        assert scores[1] == pytest.approx(PSNR_CEILING)
        assert all(scores[i] < PSNR_CEILING for i in (0, 2, 3))

    def test_per_image_best_empty(self, rng):
        originals = rng.random((2, 1, 4, 4))
        np.testing.assert_array_equal(
            per_image_best_psnr(originals, np.empty((0, 1, 4, 4))), np.zeros(2)
        )

    def test_empty_originals_raises_clearly(self, rng):
        # Regression: np.argmax over an empty score list used to raise an
        # opaque "attempt to get argmax of an empty sequence".
        recon = rng.random((1, 4, 4))
        with pytest.raises(ValueError, match="empty set of originals"):
            best_match_psnr(np.empty((0, 1, 4, 4)), recon)
        with pytest.raises(ValueError, match="empty set of originals"):
            match_reconstructions(np.empty((0, 1, 4, 4)), recon[None])

    def test_empty_reconstructions_matches_nothing(self, rng):
        assert match_reconstructions(rng.random((3, 1, 4, 4)), []) == []


class TestPairwiseMatrix:
    """The vectorized hot path must agree with the scalar definitions."""

    def test_matches_scalar_mse(self, rng):
        originals = rng.random((5, 3, 6, 6))
        recons = rng.random((4, 3, 6, 6))
        matrix = pairwise_mse(originals, recons)
        assert matrix.shape == (4, 5)
        for r, recon in enumerate(recons):
            for b, original in enumerate(originals):
                assert matrix[r, b] == pytest.approx(
                    mse(original, recon), abs=1e-12
                )

    def test_matches_scalar_psnr_including_near_perfect(self, rng):
        # Mix of exact hits (MSE-floor territory), near hits, and misses —
        # the regimes where a naive quadratic expansion loses precision.
        originals = rng.random((6, 3, 8, 8))
        recons = np.concatenate(
            [originals[[2]], originals[[4]] + 1e-4, rng.random((3, 3, 8, 8))]
        )
        matrix = pairwise_psnr(originals, recons)
        for r, recon in enumerate(recons):
            for b, original in enumerate(originals):
                assert matrix[r, b] == pytest.approx(
                    psnr(original, recon), abs=1e-9
                )
        assert matrix[0, 2] == pytest.approx(PSNR_CEILING)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            pairwise_mse(rng.random((2, 1, 4, 4)), rng.random((2, 1, 5, 5)))

    def test_empty_sets_yield_empty_matrices(self, rng):
        originals = rng.random((3, 1, 4, 4))
        assert pairwise_mse(originals, np.empty((0, 1, 4, 4))).shape == (0, 3)
        assert pairwise_psnr(np.empty((0, 1, 4, 4)), originals).shape == (3, 0)

    def test_average_attack_psnr_empty_originals_raises(self, rng):
        with pytest.raises(ValueError, match="empty set of originals"):
            average_attack_psnr(np.empty((0, 1, 4, 4)), rng.random((2, 1, 4, 4)))


class TestUniqueAssignment:
    def test_duplicates_forced_apart(self, rng):
        originals = rng.random((4, 1, 4, 4))
        duplicates = np.stack([originals[1] + 1e-3, originals[1] + 2e-3])
        best = match_reconstructions(originals, duplicates)
        assert [index for index, _ in best] == [1, 1]
        unique = match_reconstructions(originals, duplicates, assignment="unique")
        indices = [index for index, _ in unique]
        assert len(set(indices)) == 2
        assert 1 in indices

    def test_identity_permutation_recovered(self, rng):
        originals = rng.random((5, 1, 4, 4))
        order = [3, 0, 4, 1, 2]
        matches = match_reconstructions(
            originals, originals[order], assignment="unique"
        )
        assert [index for index, _ in matches] == order
        assert all(score == pytest.approx(PSNR_CEILING) for _, score in matches)

    def test_excess_reconstructions_unmatched(self, rng):
        originals = rng.random((2, 1, 4, 4))
        recons = rng.random((4, 1, 4, 4))
        matches = match_reconstructions(originals, recons, assignment="unique")
        assigned = [index for index, _ in matches if index >= 0]
        assert len(assigned) == 2
        assert len(set(assigned)) == 2
        unmatched = [score for index, score in matches if index < 0]
        assert len(unmatched) == 2
        assert all(np.isnan(score) for score in unmatched)

    def test_unknown_assignment_rejected(self, rng):
        with pytest.raises(ValueError):
            match_reconstructions(
                rng.random((2, 1, 4, 4)), rng.random((2, 1, 4, 4)),
                assignment="banana",
            )


class TestSSIM:
    def test_identical_is_one(self, rng):
        x = rng.random((3, 16, 16))
        assert ssim(x, x) == pytest.approx(1.0)

    def test_noise_lowers_ssim(self, rng):
        x = rng.random((3, 16, 16))
        noisy = np.clip(x + rng.normal(0, 0.3, x.shape), 0, 1)
        assert ssim(x, noisy) < 0.9

    def test_2d_input(self, rng):
        x = rng.random((16, 16))
        assert ssim(x, x) == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((3, 4, 4)), np.zeros((3, 5, 5)))

    def test_ordering_matches_distortion(self, rng):
        x = rng.random((3, 16, 16))
        mild = np.clip(x + rng.normal(0, 0.05, x.shape), 0, 1)
        harsh = np.clip(x + rng.normal(0, 0.5, x.shape), 0, 1)
        assert ssim(x, mild) > ssim(x, harsh)


class TestEntropy:
    def test_constant_image_zero_entropy(self):
        assert image_entropy(np.full((3, 8, 8), 0.5)) == 0.0

    def test_uniform_noise_high_entropy(self, rng):
        assert image_entropy(rng.random((3, 32, 32))) > 4.0


class TestAccuracy:
    def test_perfect(self):
        logits = np.eye(4)
        assert accuracy(logits, np.arange(4)) == 1.0

    def test_partial(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1])) == 0.5

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(3))

    def test_top_k(self):
        logits = np.array([[0.5, 0.3, 0.2], [0.1, 0.2, 0.7]])
        assert top_k_accuracy(logits, np.array([1, 0]), k=2) == 0.5
        assert top_k_accuracy(logits, np.array([0, 2]), k=1) == 1.0

    def test_top_k_caps_at_num_classes(self):
        logits = np.array([[0.5, 0.5]])
        assert top_k_accuracy(logits, np.array([0]), k=10) == 1.0
