"""Graph mechanics: recording, modes, accumulation, topological ordering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, is_grad_enabled, no_grad, topological_order


class TestGradMode:
    def test_grad_enabled_by_default(self):
        assert is_grad_enabled()

    def test_no_grad_disables_recording(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad
        assert out._backward is None

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_constant_tensors_build_no_graph(self):
        out = Tensor([1.0]) + Tensor([2.0])
        assert not out.requires_grad


class TestBackward:
    def test_backward_requires_scalar_without_grad_arg(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2.0).backward()

    def test_backward_with_explicit_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 3.0).backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(t.grad, [3.0, 6.0, 9.0])

    def test_gradient_accumulates_across_backwards(self):
        t = Tensor([2.0], requires_grad=True)
        (t * 1.0).sum().backward()
        (t * 1.0).sum().backward()
        np.testing.assert_array_equal(t.grad, [2.0])

    def test_zero_grad_resets(self):
        t = Tensor([2.0], requires_grad=True)
        (t * 1.0).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph_accumulates_both_paths(self):
        # loss = x*x + x  => dloss/dx = 2x + 1
        x = Tensor([3.0], requires_grad=True)
        ((x * x) + x).sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_shared_subexpression(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0
        (y + y).sum().backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_deep_chain_does_not_recurse(self):
        # 5000-op chain would overflow Python's recursion limit if the
        # topological sort were recursive.
        x = Tensor([1.0], requires_grad=True)
        out = x
        for _ in range(5000):
            out = out + 1.0
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, [1.0])

    def test_detach_cuts_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad
        out = y * 3.0
        assert not out.requires_grad


class TestTopologicalOrder:
    def test_root_is_last(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 2.0
        order = topological_order(y)
        assert order[-1] is y

    def test_parents_before_children_in_reverse(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 2.0
        z = y + 1.0
        order = topological_order(z)
        assert order.index(y) < order.index(z)


class TestTensorBasics:
    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_item_on_scalar(self):
        assert Tensor([[2.5]]).item() == 2.5

    def test_copy_is_independent(self):
        t = Tensor([1.0])
        c = t.copy()
        c.data[0] = 9.0
        assert t.data[0] == 1.0

    def test_dtype_conversion(self):
        t = Tensor(np.array([1, 2], dtype=np.int64))
        assert t.dtype == np.float64
