"""Secure-aggregation protocol rounds: field math, Shamir recovery,
Bonawitz and one-shot choreography, and the server's commit-then-drop
window.

The load-bearing claim throughout: a client dropping *after* mask
commitment — the failure mode plain ``masked_sum`` cannot even express —
leaves the server able to recover the survivors' exact quantized sum
bit-for-bit, and below the Shamir threshold recovery must fail loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl import (
    DishonestServer,
    FixedPointCodec,
    GradientUpdate,
    Server,
    make_aggregator,
)
from repro.fl.secagg import (
    BelowThresholdError,
    OneShotRecoveryProtocol,
    SecAggError,
    SecAggProtocol,
    default_threshold,
)
from repro.fl.secagg import field as F
from repro.fl.secagg.shamir import reconstruct_secrets, share_secrets
from repro.nn.module import Module

DIM = 5
PROTOCOL_NAMES = ["secagg", "secagg_oneshot"]


def grid_matrix(count, dim=DIM, seed=0):
    """Updates on the 2^-16 fixed-point grid: quantization is lossless."""
    rng = np.random.default_rng(seed)
    return rng.integers(-4000, 4000, (count, dim)) / 1024.0


class StubClient:
    """Deterministic fake client: every gradient entry equals its id."""

    def __init__(self, client_id: int) -> None:
        self.client_id = client_id

    def local_update(self, broadcast) -> GradientUpdate:
        return GradientUpdate(
            client_id=self.client_id,
            round_index=broadcast.round_index,
            num_examples=1,
            gradients={"w": np.full(DIM, float(self.client_id))},
            loss=float(self.client_id),
        )


def make_stub_server(num_clients, **kwargs):
    return Server(Module(), [StubClient(i) for i in range(num_clients)], **kwargs)


class TestField:
    def test_mul_matches_python_bigints(self):
        rng = np.random.default_rng(0)
        a = F.rand_field(rng, 256)
        b = F.rand_field(rng, 256)
        reference = np.array(
            [(int(x) * int(y)) % F.PRIME_INT for x, y in zip(a, b)],
            dtype=np.uint64,
        )
        np.testing.assert_array_equal(F.f_mul(a, b), reference)

    def test_add_sub_inverse(self):
        rng = np.random.default_rng(1)
        a = F.rand_field(rng, 64)
        b = F.rand_field(rng, 64)
        np.testing.assert_array_equal(F.f_sub(F.f_add(a, b), b), a)
        np.testing.assert_array_equal(F.f_add(a, F.f_neg(a)), np.zeros(64, np.uint64))

    def test_multiplicative_inverse(self):
        rng = np.random.default_rng(2)
        a = F.rand_field(rng, 64)
        a[a == 0] = 1
        np.testing.assert_array_equal(
            F.f_mul(a, F.f_inv(a)), np.ones(64, np.uint64)
        )

    def test_signed_embedding_round_trip(self):
        values = np.array([0, 1, -1, 2**40, -(2**40), 2**59, -(2**59)], dtype=np.int64)
        np.testing.assert_array_equal(
            F.from_field_centered(F.to_field(values)), values
        )

    def test_interpolate_identity_and_shift(self):
        rng = np.random.default_rng(3)
        xs = np.arange(1, 7, dtype=np.uint64)
        ys = F.rand_field(rng, (6, 9))
        np.testing.assert_array_equal(F.interpolate(xs, ys, xs), ys)
        # Evaluating a degree-1 polynomial y = 3x + 5 anywhere is exact.
        line_xs = np.array([1, 2], dtype=np.uint64)
        line_ys = np.array([[8], [11]], dtype=np.uint64)
        at_ten = F.interpolate(line_xs, line_ys, np.array([10], dtype=np.uint64))
        np.testing.assert_array_equal(at_ten, [[35]])


class TestShamir:
    def test_any_threshold_subset_recovers(self):
        rng = np.random.default_rng(4)
        secrets = F.rand_field(rng, 6)
        shares = share_secrets(secrets, num_shares=9, threshold=4, rng=rng)
        for subset in ([0, 1, 2, 3], [5, 6, 7, 8], [0, 3, 4, 8]):
            xs = np.asarray(subset, dtype=np.uint64) + 1
            np.testing.assert_array_equal(
                reconstruct_secrets(xs, shares[subset]), secrets
            )

    def test_below_threshold_subset_is_uninformative(self):
        # With t-1 shares the interpolation is underdetermined; the value
        # it happens to produce must not equal the secret (overwhelmingly).
        rng = np.random.default_rng(5)
        secrets = F.rand_field(rng, 8)
        shares = share_secrets(secrets, num_shares=9, threshold=4, rng=rng)
        xs = np.array([1, 2, 3], dtype=np.uint64)
        assert not np.array_equal(reconstruct_secrets(xs, shares[:3]), secrets)

    def test_duplicate_coordinates_rejected(self):
        rng = np.random.default_rng(6)
        shares = share_secrets(F.rand_field(rng, 2), 5, 3, rng)
        with pytest.raises(ValueError):
            reconstruct_secrets(np.array([1, 1, 2], np.uint64), shares[[0, 0, 1]])

    def test_invalid_threshold_rejected(self):
        rng = np.random.default_rng(7)
        with pytest.raises(ValueError):
            share_secrets(F.rand_field(rng, 1), num_shares=3, threshold=4, rng=rng)


class TestBonawitzChoreography:
    def test_commitment_messages(self):
        session = SecAggProtocol(seed=1).begin(list(range(6)), round_index=2)
        assert [a.client_id for a in session.advertisements] == list(range(6))
        assert all(a.round_index == 2 for a in session.advertisements)
        bundles = session.share_bundles()
        assert len(bundles) == 36  # n^2: every client shares with everyone
        assert {b.share_x for b in bundles} == set(range(1, 7))

    def test_unmask_responses_never_reveal_both_shares(self):
        # A survivor hands over self-mask shares for survivors and key
        # shares for dropped clients — never both for the same sender,
        # or the server could unmask a live upload.
        session = SecAggProtocol(seed=1).begin(list(range(6)), round_index=0)
        _, responses = session.unmask_messages([0, 2, 3, 5])
        for response in responses:
            assert set(response.self_mask_shares) == {0, 2, 3, 5}
            assert set(response.seed_shares) == {1, 4}
            assert not (
                set(response.self_mask_shares) & set(response.seed_shares)
            )

    def test_default_threshold_is_strict_majority(self):
        assert default_threshold(10) == 6
        assert default_threshold(11) == 6
        assert default_threshold(1) == 1
        session = SecAggProtocol(seed=0).begin(list(range(10)), 0)
        assert session.threshold == 6

    def test_uncommitted_clients_rejected(self):
        session = SecAggProtocol(seed=0).begin([1, 2, 3], 0)
        with pytest.raises(SecAggError):
            session.masked_upload(7, np.zeros(DIM, np.uint64))


@pytest.mark.parametrize("protocol_cls", [SecAggProtocol, OneShotRecoveryProtocol])
class TestProtocolRecovery:
    def _begin(self, protocol_cls, client_ids, round_index, dim, seed=3):
        protocol = protocol_cls(seed=seed)
        if protocol_cls is OneShotRecoveryProtocol:
            return protocol.begin(client_ids, round_index, dim=dim)
        return protocol.begin(client_ids, round_index)

    def _quantized(self, protocol_cls, codec, matrix, count):
        quantized = codec.quantize(matrix, count=count)
        if protocol_cls is OneShotRecoveryProtocol:
            return quantized.view(np.int64)
        return quantized

    def _ring_sum(self, protocol_cls, recovered):
        if protocol_cls is OneShotRecoveryProtocol:
            return recovered.view(np.uint64)
        return recovered

    def test_exact_sum_with_mid_round_dropout(self, protocol_cls):
        matrix = grid_matrix(12)
        codec = FixedPointCodec(16)
        session = self._begin(protocol_cls, list(range(12)), 4, DIM)
        quantized = self._quantized(protocol_cls, codec, matrix, 12)
        survivors = [0, 1, 3, 4, 6, 8, 9, 11]  # 4 of 12 drop after commitment
        uploads = [session.masked_upload(cid, quantized[cid]) for cid in survivors]
        recovered = self._ring_sum(protocol_cls, session.recover_sum(uploads))
        expected = codec.quantize(matrix[survivors], count=12).sum(
            axis=0, dtype=np.uint64
        )
        np.testing.assert_array_equal(recovered, expected)

    def test_no_dropout_is_exact_too(self, protocol_cls):
        matrix = grid_matrix(7, seed=9)
        codec = FixedPointCodec(16)
        session = self._begin(protocol_cls, list(range(7)), 0, DIM)
        quantized = self._quantized(protocol_cls, codec, matrix, 7)
        uploads = [session.masked_upload(cid, quantized[cid]) for cid in range(7)]
        recovered = self._ring_sum(protocol_cls, session.recover_sum(uploads))
        np.testing.assert_array_equal(
            recovered, codec.quantize(matrix, count=7).sum(axis=0, dtype=np.uint64)
        )

    def test_exactly_threshold_survivors_recover(self, protocol_cls):
        matrix = grid_matrix(9, seed=2)
        codec = FixedPointCodec(16)
        session = self._begin(protocol_cls, list(range(9)), 1, DIM)
        threshold = session.threshold
        quantized = self._quantized(protocol_cls, codec, matrix, 9)
        survivors = list(range(threshold))
        uploads = [session.masked_upload(cid, quantized[cid]) for cid in survivors]
        recovered = self._ring_sum(protocol_cls, session.recover_sum(uploads))
        expected = codec.quantize(matrix[survivors], count=9).sum(
            axis=0, dtype=np.uint64
        )
        np.testing.assert_array_equal(recovered, expected)

    def test_below_threshold_raises(self, protocol_cls):
        matrix = grid_matrix(9, seed=2)
        codec = FixedPointCodec(16)
        session = self._begin(protocol_cls, list(range(9)), 1, DIM)
        quantized = self._quantized(protocol_cls, codec, matrix, 9)
        uploads = [
            session.masked_upload(cid, quantized[cid])
            for cid in range(session.threshold - 1)
        ]
        with pytest.raises(BelowThresholdError):
            session.recover_sum(uploads)

    def test_duplicate_uploads_rejected(self, protocol_cls):
        matrix = grid_matrix(6)
        codec = FixedPointCodec(16)
        session = self._begin(protocol_cls, list(range(6)), 0, DIM)
        quantized = self._quantized(protocol_cls, codec, matrix, 6)
        upload = session.masked_upload(0, quantized[0])
        others = [session.masked_upload(cid, quantized[cid]) for cid in range(1, 6)]
        with pytest.raises(SecAggError):
            session.recover_sum([upload, upload] + others)

    def test_uploads_hide_plaintext(self, protocol_cls):
        matrix = grid_matrix(6, seed=5)
        codec = FixedPointCodec(16)
        session = self._begin(protocol_cls, list(range(6)), 0, DIM)
        quantized = self._quantized(protocol_cls, codec, matrix, 6)
        for cid in range(6):
            upload = session.masked_upload(cid, quantized[cid])
            assert not np.array_equal(
                np.asarray(upload.payload, dtype=np.uint64),
                quantized[cid].view(np.uint64),
            )

    def test_rounds_are_replayable(self, protocol_cls):
        # Two sessions for the same (seed, round, clients) run the same
        # protocol execution: a resumed round recovers identical bits.
        matrix = grid_matrix(8, seed=6)
        codec = FixedPointCodec(16)
        survivors = [0, 2, 3, 5, 6]
        results = []
        for _ in range(2):
            session = self._begin(protocol_cls, list(range(8)), 3, DIM)
            quantized = self._quantized(protocol_cls, codec, matrix, 8)
            uploads = [
                session.masked_upload(cid, quantized[cid]) for cid in survivors
            ]
            results.append(session.recover_sum(uploads))
        np.testing.assert_array_equal(results[0], results[1])


class TestOneShotSpecifics:
    def test_one_message_per_survivor_regardless_of_dropout(self):
        session = OneShotRecoveryProtocol(seed=1).begin(list(range(10)), 0, dim=24)
        few_dropped = session.recovery_segments([0, 1, 2, 3, 4, 5, 6, 7])
        many_dropped = session.recovery_segments([0, 1, 2, 3, 4, 5])
        assert all(m.segment.shape == (session.chunk_size,) for m in few_dropped)
        assert all(m.segment.shape == (session.chunk_size,) for m in many_dropped)

    def test_segments_shrink_with_data_chunks(self):
        # dim 24 split across k = threshold - privacy chunks: the whole
        # point of the encoding is sub-linear recovery bandwidth.
        session = OneShotRecoveryProtocol(seed=1).begin(list(range(10)), 0, dim=24)
        assert session.data_chunks == session.threshold - 1
        assert session.chunk_size * session.data_chunks >= 24
        assert session.chunk_size < 24

    def test_encoded_segments_messages(self):
        session = OneShotRecoveryProtocol(seed=1).begin([3, 5, 8], 2, dim=6)
        received = session.encoded_segments(5)
        assert [m.sender_id for m in received] == [3, 5, 8]
        assert all(m.recipient_id == 5 and m.round_index == 2 for m in received)


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
class TestServerIntegration:
    def test_commit_then_drop_round_recovers_survivor_mean(self, name):
        server = make_stub_server(
            16, aggregator=name, dropout_rate=0.3, straggler_rate=0.2, seed=11
        )
        record = server.run_round()
        assert record.dropped_ids or record.straggler_ids, (
            "seeded scenario should lose clients after commitment"
        )
        # Survivors' mean, recovered exactly through the protocol.
        expected = np.full(DIM, np.mean(record.participant_ids))
        np.testing.assert_allclose(server.last_aggregate["w"], expected, atol=2e-5)
        # Commitment covers the whole selected set; losses are recorded.
        assert record.secagg is not None
        assert record.secagg["committed"] == len(record.selected_ids)
        assert record.secagg["survivors"] == len(record.participant_ids)
        assert record.secagg["dropped"] == len(record.dropped_ids) + len(
            record.straggler_ids
        )
        assert record.weighting == "uniform"

    def test_stragglers_are_recovered_not_stale(self, name):
        # Under a protocol aggregator a straggler's late masked upload is
        # useless (its round's masks are gone); the server must discard
        # it and recover via shares — accept_stale becomes inert.
        server = make_stub_server(
            16, aggregator=name, straggler_rate=0.5, accept_stale=True, seed=3
        )
        first = server.run_round()
        assert first.straggler_ids
        second = server.run_round()
        assert second.stale_ids == []
        assert set(second.participant_ids).isdisjoint(second.straggler_ids)

    def test_below_threshold_aborts_gracefully(self, name):
        server = make_stub_server(
            10, aggregator=name, dropout_rate=0.97, seed=13, learning_rate=0.5
        )
        record = server.run_round()
        assert len(record.selected_ids) - len(record.dropped_ids) < 6
        assert record.secagg is not None and record.secagg.get("aborted")
        assert record.participant_ids == []
        assert np.isnan(record.mean_loss)
        assert server.last_aggregate is None
        # The model took no step and the next round proceeds normally.
        assert server.round_index == 1

    def test_server_never_inspects_individual_updates(self, name):
        class PerUpdateAttack:
            """A per-update inversion attack: needs plaintext updates."""

            name = "stub_inversion"
            calls = 0

            def craft(self, model):
                pass

            def reconstruct(self, gradients):
                type(self).calls += 1
                return []

        attack = PerUpdateAttack()
        server = DishonestServer(
            Module(),
            [StubClient(i) for i in range(8)],
            attack,
            aggregator=name,
            seed=0,
        )
        record = server.run_round()
        # Under real secure aggregation the server only ever holds masked
        # payloads, so per-update inversion gets nothing...
        assert PerUpdateAttack.calls == 0
        assert record.attack_events == []
        assert server.reconstructions == {}

    def test_aggregate_inversion_hook_still_fires(self, name):
        class AggregateAttack:
            """A LOKI-style attack reconstructing from the aggregate."""

            name = "stub_aggregate"
            reconstructs_from_aggregate = True

            def craft(self, model):
                pass

            def reconstruct_per_client(self, aggregated):
                return {0: ["recon"]}

        server = DishonestServer(
            Module(),
            [StubClient(i) for i in range(8)],
            AggregateAttack(),
            aggregator=name,
            seed=0,
        )
        record = server.run_round()
        # ... but aggregate inversion sees exactly what secure aggregation
        # reveals — the sum — so it still operates (the ROADMAP question).
        assert len(record.attack_events) == 1
        assert record.attack_events[0]["from_aggregate"]

    def test_plain_aggregators_record_no_secagg_metadata(self, name):
        server = make_stub_server(6, aggregator="fedavg")
        record = server.run_round()
        assert record.secagg is None
        assert record.aggregator == "fedavg"
        # name fixture unused here on purpose: the contrast is the point.
        assert name in PROTOCOL_NAMES


class TestHundredClientAcceptance:
    """The issue's acceptance bar: 100 clients, 30% dropped after mask
    commitment, exact quantized sum recovered bit-for-bit — both
    protocols."""

    @pytest.mark.parametrize("name", PROTOCOL_NAMES)
    def test_exact_sum_at_30pct_dropout(self, name):
        num_clients = 100
        matrix = grid_matrix(num_clients, dim=32, seed=17)
        aggregator = make_aggregator(name, seed=5)
        committed = list(range(num_clients))
        # Drop exactly 30 clients deterministically, after commitment.
        dropped = set(range(0, num_clients, 10)) | set(range(1, num_clients, 5))
        survivors = [cid for cid in committed if cid not in dropped]
        assert len(survivors) == 70
        aggregated = aggregator.protocol_round(
            matrix[survivors], survivors, committed, round_index=9
        )
        exact = aggregator.codec.quantize(matrix[survivors], count=num_clients).sum(
            axis=0, dtype=np.uint64
        )
        expected = aggregator.codec.dequantize_sum(exact) / len(survivors)
        np.testing.assert_array_equal(aggregated, expected)
        assert aggregator.last_metadata["survivors"] == 70
        assert aggregator.last_metadata["committed"] == 100
