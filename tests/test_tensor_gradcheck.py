"""Central-finite-difference gradcheck of every op, in both kernel modes.

The existing op suites (``test_tensor_ops``, ``test_conv_ops``) gradcheck
the *default* kernel mode.  This suite is the acceleration work's safety
net: one op catalog covering every Tensor op, the conv/pool/batch-norm
kernels, and the fused layer/loss kernels, each checked against central
finite differences under ``fused`` **and** ``reference`` kernels.  A fused
backward that drifts from the true gradient — or a reference backward
broken while being preserved as the oracle — fails here with the op's
name in the test id.

Gradients are also checked for the *non-point* operands where an op has
them (matmul's right operand, Linear's weight/bias, conv's filters), since
a fused backward can be right for one operand and wrong for another.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.tensor.backend as backend
from repro.nn.layers import Linear
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.tensor import (
    Tensor,
    avg_pool2d,
    batch_norm,
    concatenate,
    conv2d,
    global_avg_pool2d,
    max_pool2d,
    stack,
)
from repro.utils import numerical_gradient

ATOL = 1e-6

KERNEL_MODES = ("fused", "reference")


@pytest.fixture(params=KERNEL_MODES)
def kernel_mode(request):
    previous = backend.set_kernel_mode(request.param)
    yield request.param
    backend.set_kernel_mode(previous)


def check_grad(build_loss, point: np.ndarray, atol: float = ATOL) -> None:
    tensor = Tensor(point.copy(), requires_grad=True)
    build_loss(tensor).backward()
    numeric = numerical_gradient(
        lambda p: build_loss(Tensor(p)).item(), point.copy()
    )
    np.testing.assert_allclose(tensor.grad, numeric, atol=atol)


def _rng():
    return np.random.default_rng(8101)


# ---------------------------------------------------------------------------
# The op catalog: (case id, point factory, loss builder).  Point factories
# keep inputs inside each op's smooth region (positive for log/sqrt, away
# from zero for abs/div, untied for max/clip) so the finite-difference
# oracle is valid.
# ---------------------------------------------------------------------------

def _smooth(shape, low=0.2, high=1.8):
    return _rng().uniform(low, high, size=shape)


def _signed(shape):
    values = _rng().uniform(0.2, 1.5, size=shape)
    signs = _rng().choice([-1.0, 1.0], size=shape)
    return values * signs


_OTHER_2x5 = _signed((2, 5))
_OTHER_3x4 = _signed((3, 4))
_MAT_5x3 = _signed((5, 3))
_TARGET_2x5 = _signed((2, 5))
_LABELS_4 = np.array([0, 2, 1, 2])

OP_CASES = {
    "add": ((3, 4), lambda t: (t + Tensor(_OTHER_3x4)).sum()),
    "add_broadcast": ((3, 1), lambda t: (t + Tensor(_OTHER_3x4)).sum()),
    "radd": ((3, 4), lambda t: (2.5 + t).sum()),
    "neg": ((2, 5), lambda t: (-t).sum()),
    "sub": ((3, 4), lambda t: (t - Tensor(_OTHER_3x4)).sum()),
    "sub_broadcast": ((1, 4), lambda t: (t - Tensor(_OTHER_3x4)).sum()),
    "rsub": ((2, 5), lambda t: (1.5 - t).sum()),
    "mul": ((2, 5), lambda t: (t * Tensor(_OTHER_2x5)).sum()),
    "rmul": ((2, 5), lambda t: (3.0 * t).sum()),
    "div": ((2, 5), lambda t: (t / Tensor(_OTHER_2x5)).sum()),
    "rdiv": ((2, 5), lambda t: (1.0 / t).sum()),
    "pow": ((2, 5), lambda t: (t ** 3.0).sum()),
    "relu": ((2, 5), lambda t: t.relu().sum()),
    "exp": ((2, 5), lambda t: t.exp().sum()),
    "log": ((2, 5), lambda t: t.log().sum(), _smooth),
    "sqrt": ((2, 5), lambda t: t.sqrt().sum(), _smooth),
    "tanh": ((2, 5), lambda t: t.tanh().sum()),
    "sigmoid": ((2, 5), lambda t: t.sigmoid().sum()),
    "abs": ((2, 5), lambda t: t.abs().sum()),
    "clip": ((2, 5), lambda t: t.clip(-0.9, 0.9).sum()),
    "matmul": ((2, 5), lambda t: (t @ Tensor(_MAT_5x3)).sum()),
    "transpose": ((2, 5), lambda t: (t.transpose(1, 0) * 2.0).sum()),
    "T": ((2, 5), lambda t: (t.T * Tensor(_signed((5, 2)))).sum()),
    "reshape": ((2, 6), lambda t: (t.reshape(3, 4) * Tensor(_OTHER_3x4)).sum()),
    "flatten": ((2, 3, 2), lambda t: (t.flatten() * 1.5).sum()),
    "getitem": ((4, 5), lambda t: (t[1:3, ::2] * 2.0).sum()),
    "pad2d": ((1, 2, 3, 3), lambda t: (t.pad2d(1) * 0.5).sum()),
    "sum_all": ((2, 5), lambda t: t.sum()),
    "sum_axis": ((2, 5), lambda t: (t.sum(axis=0) * 3.0).sum()),
    "sum_keepdims": ((2, 5), lambda t: (t.sum(axis=1, keepdims=True) * 2.0).sum()),
    "mean_all": ((2, 5), lambda t: t.mean()),
    "mean_axis": ((2, 5), lambda t: (t.mean(axis=1) * 2.0).sum()),
    "mean_keepdims": ((2, 5), lambda t: (t.mean(axis=0, keepdims=True) * 2.0).sum()),
    "var_all": ((2, 5), lambda t: t.var()),
    "var_axis": ((2, 5), lambda t: (t.var(axis=1) * 2.0).sum()),
    "var_keepdims": ((2, 5), lambda t: (t.var(axis=0, keepdims=True) * 2.0).sum()),
    "max_all": ((2, 5), lambda t: t.max()),
    "max_axis": ((2, 5), lambda t: (t.max(axis=1) * 2.0).sum()),
    "log_softmax": ((3, 4), lambda t: (t.log_softmax() * Tensor(_OTHER_3x4)).sum()),
    "softmax": ((3, 4), lambda t: (t.softmax() * Tensor(_OTHER_3x4)).sum()),
    "concatenate": (
        (2, 3),
        lambda t: (concatenate([t, Tensor(_signed((2, 3)))], axis=1) * 2.0).sum(),
    ),
    "stack": (
        (2, 3),
        lambda t: (stack([t, Tensor(_signed((2, 3)))], axis=0) * 2.0).sum(),
    ),
    "conv2d": (
        (2, 2, 5, 5),
        lambda t: conv2d(
            t, Tensor(_signed((3, 2, 3, 3)) * 0.3), Tensor(_signed(3) * 0.1),
            stride=1, padding=1,
        ).sum(),
    ),
    "conv2d_stride": (
        (1, 2, 6, 6),
        lambda t: conv2d(
            t, Tensor(_signed((2, 2, 2, 2)) * 0.3), None, stride=2
        ).sum(),
    ),
    "max_pool2d": ((2, 2, 4, 4), lambda t: max_pool2d(t, 2).sum()),
    "avg_pool2d": ((2, 2, 4, 4), lambda t: avg_pool2d(t, 2).sum()),
    "global_avg_pool2d": ((2, 3, 4, 4), lambda t: global_avg_pool2d(t).sum()),
    "batch_norm": (
        (4, 3, 2, 2),
        lambda t: batch_norm(
            t, Tensor(_smooth(3)), Tensor(_signed(3) * 0.1),
            np.zeros(3), np.ones(3), training=True,
        ).sum(),
    ),
    "mse_loss": ((2, 5), lambda t: MSELoss()(t, _TARGET_2x5)),
    "cross_entropy_mean": ((4, 3), lambda t: CrossEntropyLoss()(t, _LABELS_4)),
    "cross_entropy_sum": (
        (4, 3),
        lambda t: CrossEntropyLoss(reduction="sum")(t, _LABELS_4),
    ),
}


@pytest.mark.parametrize("case", sorted(OP_CASES), ids=sorted(OP_CASES))
def test_op_gradcheck(case, kernel_mode):
    shape, build_loss, *factory = OP_CASES[case]
    make_point = factory[0] if factory else _signed
    check_grad(build_loss, make_point(shape))


# ---------------------------------------------------------------------------
# Non-point operands: ops whose backward has a second (or third) gradient
# path that the catalog above never differentiates through.
# ---------------------------------------------------------------------------


def test_matmul_right_operand_grad(kernel_mode):
    left = Tensor(_signed((2, 5)))
    check_grad(lambda t: (left @ t).sum(), _signed((5, 3)))


def test_div_denominator_grad(kernel_mode):
    numerator = Tensor(_signed((2, 5)))
    check_grad(lambda t: (numerator / t).sum(), _signed((2, 5)))


@pytest.mark.parametrize("which", ["x", "weight", "bias"])
def test_linear_layer_grads(which, kernel_mode):
    """The (possibly fused) Linear layer, differentiated per operand."""
    template = Linear(5, 3, rng=np.random.default_rng(7))
    x0 = _signed((4, 5))

    def build(t):
        probe = Linear(5, 3, rng=np.random.default_rng(7))
        if which == "x":
            return probe(t).sum()
        # Swap the probed parameter for the gradcheck point; forward reads
        # the attribute, so a plain Tensor substitutes cleanly.
        setattr(probe, which, t)
        return probe(Tensor(x0)).sum()

    point = {
        "x": x0,
        "weight": template.weight.data.copy(),
        "bias": template.bias.data.copy(),
    }[which]
    check_grad(build, point)


@pytest.mark.parametrize("which", ["weight", "bias"])
def test_conv2d_parameter_grads(which, kernel_mode):
    x = Tensor(_signed((2, 2, 5, 5)))
    w0 = _signed((3, 2, 3, 3)) * 0.3
    b0 = _signed(3) * 0.1

    def build(t):
        weight = t if which == "weight" else Tensor(w0)
        bias = t if which == "bias" else Tensor(b0)
        return conv2d(x, weight, bias, stride=1, padding=1).sum()

    check_grad(build, w0 if which == "weight" else b0)


@pytest.mark.parametrize("which", ["gamma", "beta"])
def test_batch_norm_parameter_grads(which, kernel_mode):
    x = Tensor(_signed((4, 3, 2, 2)))
    gamma0, beta0 = _smooth(3), _signed(3) * 0.1

    def build(t):
        gamma = t if which == "gamma" else Tensor(gamma0)
        beta = t if which == "beta" else Tensor(beta0)
        return batch_norm(
            x, gamma, beta, np.zeros(3), np.ones(3), training=True
        ).sum()

    check_grad(build, gamma0 if which == "gamma" else beta0)


def test_modes_cover_both_kernel_paths():
    """The fixture genuinely switches the mode the kernels read."""
    with_modes = set()
    for mode in KERNEL_MODES:
        previous = backend.set_kernel_mode(mode)
        try:
            with_modes.add((mode, backend.FUSED))
        finally:
            backend.set_kernel_mode(previous)
    assert with_modes == {("fused", True), ("reference", False)}
