"""Convolution/pooling/batch-norm gradient checks against finite differences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    avg_pool2d,
    batch_norm,
    conv2d,
    global_avg_pool2d,
    max_pool2d,
)
from repro.utils import numerical_gradient


@pytest.fixture
def conv_setup(rng):
    x = rng.standard_normal((2, 3, 6, 6))
    w = rng.standard_normal((4, 3, 3, 3)) * 0.3
    b = rng.standard_normal(4) * 0.1
    return x, w, b


class TestConv2d:
    def test_output_shape(self, conv_setup):
        x, w, b = conv_setup
        out = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=1, padding=1)
        assert out.shape == (2, 4, 6, 6)

    def test_stride_shape(self, conv_setup):
        x, w, b = conv_setup
        out = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=2, padding=1)
        assert out.shape == (2, 4, 3, 3)

    def test_no_bias(self, conv_setup):
        x, w, _ = conv_setup
        out = conv2d(Tensor(x), Tensor(w), None, padding=1)
        assert out.shape == (2, 4, 6, 6)

    def test_matches_direct_convolution(self, rng):
        # Compare against an explicit loop implementation on a tiny case.
        x = rng.standard_normal((1, 2, 4, 4))
        w = rng.standard_normal((3, 2, 2, 2))
        out = conv2d(Tensor(x), Tensor(w), None).numpy()
        expected = np.zeros((1, 3, 3, 3))
        for o in range(3):
            for i in range(3):
                for j in range(3):
                    expected[0, o, i, j] = np.sum(
                        x[0, :, i : i + 2, j : j + 2] * w[o]
                    )
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_input_gradient(self, rng):
        x = rng.standard_normal((1, 2, 5, 5))
        w = Tensor(rng.standard_normal((3, 2, 3, 3)) * 0.2)

        def loss_of(data):
            return (conv2d(Tensor(data), w, None, padding=1) ** 2).sum().item()

        t = Tensor(x.copy(), requires_grad=True)
        (conv2d(t, w, None, padding=1) ** 2).sum().backward()
        numeric = numerical_gradient(loss_of, x.copy())
        np.testing.assert_allclose(t.grad, numeric, atol=1e-4)

    def test_weight_gradient(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 4, 4)))
        w0 = rng.standard_normal((2, 2, 3, 3)) * 0.2

        def loss_of(wdata):
            return (conv2d(x, Tensor(wdata), None) ** 2).sum().item()

        w = Tensor(w0.copy(), requires_grad=True)
        (conv2d(x, w, None) ** 2).sum().backward()
        numeric = numerical_gradient(loss_of, w0.copy())
        np.testing.assert_allclose(w.grad, numeric, atol=1e-4)

    def test_bias_gradient(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 4, 4)))
        w = Tensor(rng.standard_normal((2, 2, 3, 3)) * 0.2)
        b0 = rng.standard_normal(2) * 0.1

        def loss_of(bdata):
            return (conv2d(x, w, Tensor(bdata)) ** 2).sum().item()

        b = Tensor(b0.copy(), requires_grad=True)
        (conv2d(x, w, b) ** 2).sum().backward()
        numeric = numerical_gradient(loss_of, b0.copy())
        np.testing.assert_allclose(b.grad, numeric, atol=1e-5)


class TestPooling:
    def test_max_pool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2).numpy()
        np.testing.assert_array_equal(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_max_pool_grad(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        t = Tensor(x, requires_grad=True)
        max_pool2d(t, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_array_equal(t.grad[0, 0], expected)

    def test_avg_pool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2).numpy()
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_grad_uniform(self):
        t = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        avg_pool2d(t, 2).sum().backward()
        np.testing.assert_allclose(t.grad, np.full((1, 1, 4, 4), 0.25))

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        out = global_avg_pool2d(Tensor(x)).numpy()
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)))

    def test_max_pool_numeric_grad(self, rng):
        x = rng.standard_normal((1, 2, 4, 4))

        def loss_of(data):
            return (max_pool2d(Tensor(data), 2) ** 2).sum().item()

        t = Tensor(x.copy(), requires_grad=True)
        (max_pool2d(t, 2) ** 2).sum().backward()
        numeric = numerical_gradient(loss_of, x.copy())
        np.testing.assert_allclose(t.grad, numeric, atol=1e-4)


class TestBatchNorm:
    def _run(self, x, training, rng=None, gamma=None, beta=None):
        c = x.shape[1]
        gamma = gamma if gamma is not None else Tensor(np.ones(c), requires_grad=True)
        beta = beta if beta is not None else Tensor(np.zeros(c), requires_grad=True)
        running_mean = np.zeros(c)
        running_var = np.ones(c)
        out = batch_norm(x, gamma, beta, running_mean, running_var, training)
        return out, gamma, beta, running_mean, running_var

    def test_training_normalizes(self, rng):
        x = Tensor(rng.standard_normal((8, 3, 4, 4)) * 5.0 + 2.0)
        out, *_ = self._run(x, training=True)
        data = out.numpy()
        np.testing.assert_allclose(data.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        np.testing.assert_allclose(data.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_update(self, rng):
        x = Tensor(rng.standard_normal((16, 2, 3, 3)) + 4.0)
        _, _, _, running_mean, running_var = self._run(x, training=True)
        assert np.all(running_mean > 0.0)  # moved toward the batch mean of ~4

    def test_eval_uses_running_stats(self, rng):
        x = Tensor(rng.standard_normal((4, 2, 3, 3)))
        gamma = Tensor(np.ones(2), requires_grad=True)
        beta = Tensor(np.zeros(2), requires_grad=True)
        running_mean = np.full(2, 1.0)
        running_var = np.full(2, 4.0)
        out = batch_norm(x, gamma, beta, running_mean, running_var, training=False)
        np.testing.assert_allclose(
            out.numpy(), (x.numpy() - 1.0) / np.sqrt(4.0 + 1e-5), atol=1e-10
        )

    def test_input_gradient_training(self, rng):
        x0 = rng.standard_normal((4, 2, 3, 3))
        gamma = Tensor(rng.standard_normal(2) + 1.0, requires_grad=False)
        beta = Tensor(rng.standard_normal(2), requires_grad=False)
        target = rng.standard_normal((4, 2, 3, 3))

        def loss_of(data):
            out = batch_norm(
                Tensor(data), gamma, beta, np.zeros(2), np.ones(2), training=True
            )
            return ((out - Tensor(target)) ** 2).sum().item()

        t = Tensor(x0.copy(), requires_grad=True)
        out = batch_norm(t, gamma, beta, np.zeros(2), np.ones(2), training=True)
        ((out - Tensor(target)) ** 2).sum().backward()
        numeric = numerical_gradient(loss_of, x0.copy(), epsilon=1e-5)
        np.testing.assert_allclose(t.grad, numeric, atol=1e-4)

    def test_gamma_beta_gradients(self, rng):
        x = Tensor(rng.standard_normal((4, 2, 3, 3)))
        g0 = rng.standard_normal(2) + 1.0
        b0 = rng.standard_normal(2)

        def loss_of_gamma(g):
            out = batch_norm(
                x, Tensor(g), Tensor(b0), np.zeros(2), np.ones(2), training=True
            )
            return (out ** 2).sum().item()

        gamma = Tensor(g0.copy(), requires_grad=True)
        beta = Tensor(b0.copy(), requires_grad=True)
        out = batch_norm(x, gamma, beta, np.zeros(2), np.ones(2), training=True)
        (out ** 2).sum().backward()
        numeric = numerical_gradient(loss_of_gamma, g0.copy(), epsilon=1e-5)
        np.testing.assert_allclose(gamma.grad, numeric, atol=1e-4)

    def test_2d_input_supported(self, rng):
        x = Tensor(rng.standard_normal((10, 3)))
        gamma = Tensor(np.ones(3), requires_grad=True)
        beta = Tensor(np.zeros(3), requires_grad=True)
        out = batch_norm(x, gamma, beta, np.zeros(3), np.ones(3), training=True)
        np.testing.assert_allclose(out.numpy().mean(axis=0), 0.0, atol=1e-10)
