"""QBI attack: sole-activation optimum, crafting, inversion, defense impact."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    ImprintedModel,
    QBIAttack,
    activation_matrix,
    sole_activation_probability,
)
from repro.defense import OasisDefense
from repro.fl import compute_batch_gradients
from repro.metrics import per_image_best_psnr
from repro.nn import CrossEntropyLoss


@pytest.fixture
def crafted(cifar_like):
    num_neurons = 256
    model = ImprintedModel(
        cifar_like.image_shape, num_neurons, cifar_like.num_classes,
        rng=np.random.default_rng(11),
    )
    attack = QBIAttack(num_neurons, expected_batch_size=8, seed=7)
    attack.calibrate_from_public_data(cifar_like.images[:100])
    attack.craft(model)
    return model, attack


class TestTuning:
    def test_activation_probability_is_inverse_batch_size(self):
        for batch_size in (2, 4, 8, 16):
            attack = QBIAttack(16, expected_batch_size=batch_size)
            assert attack.activation_probability == pytest.approx(1.0 / batch_size)

    def test_inverse_batch_size_maximizes_sole_activation(self):
        # p* = 1/B is the argmax of B * p * (1-p)^(B-1).
        for batch_size in (2, 4, 8):
            optimum = sole_activation_probability(1.0 / batch_size, batch_size)
            grid = np.linspace(0.01, 0.99, 197)
            values = [sole_activation_probability(p, batch_size) for p in grid]
            assert optimum >= max(values) - 1e-12

    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            QBIAttack(16, expected_batch_size=0)

    def test_batch_size_one_does_not_degenerate_to_certainty(self):
        # p is capped at 0.5 so the near-total-activation guard never
        # discards the (all-verbatim) single-sample reconstructions.
        attack = QBIAttack(16, expected_batch_size=1)
        assert attack.activation_probability == pytest.approx(0.5)

    def test_batch_size_one_reconstructs_the_sample(self, cifar_like):
        # Regression: B=1 used to set p=0.99, so every trap fired and the
        # near-total-activation guard returned an empty result even
        # though each fired trap held the single sample verbatim.
        attack = QBIAttack(64, expected_batch_size=1, seed=3)
        attack.calibrate_from_public_data(cifar_like.images[:64])
        model = ImprintedModel(
            cifar_like.image_shape, 64, cifar_like.num_classes,
            rng=np.random.default_rng(2),
        )
        attack.craft(model)
        images, labels = cifar_like.sample_batch(1, np.random.default_rng(8))
        grads, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), images, labels
        )
        result = attack.reconstruct(grads)
        assert len(result) >= 1, result.reason
        assert per_image_best_psnr(images, result.images).max() > 100.0

    def test_empirical_rate_close_to_target(self, crafted, cifar_like):
        model, attack = crafted
        weight, bias = model.imprint_parameters()
        flat = cifar_like.images.reshape(len(cifar_like), -1).astype(np.float64)
        rate = activation_matrix(weight, bias, flat).mean()
        assert rate == pytest.approx(attack.activation_probability, abs=0.04)

    def test_seed_determinism(self, cifar_like):
        crafted = []
        for _ in range(2):
            model = ImprintedModel(cifar_like.image_shape, 32, 10,
                                   rng=np.random.default_rng(0))
            attack = QBIAttack(32, expected_batch_size=4, seed=5)
            attack.calibrate_from_public_data(cifar_like.images[:50])
            attack.craft(model)
            crafted.append(model.imprint_parameters())
        np.testing.assert_array_equal(crafted[0][0], crafted[1][0])
        np.testing.assert_array_equal(crafted[0][1], crafted[1][1])


class TestReconstruction:
    def test_recovers_undefended_batch(self, crafted, cifar_like, rng):
        # Acceptance shape: >= 1 image above 18 dB on an undefended
        # 8-image batch (in practice every image is recovered verbatim).
        model, attack = crafted
        images, labels = cifar_like.sample_batch(8, rng)
        grads, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), images, labels
        )
        result = attack.reconstruct(grads)
        best = per_image_best_psnr(images, result.images)
        assert (best > 18.0).sum() >= 1
        assert best.max() > 100.0  # at least one verbatim extraction

    def test_oasis_mr_sh_drops_match_rate(self, crafted, cifar_like, rng):
        model, attack = crafted
        images, labels = cifar_like.sample_batch(8, rng)
        grads, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), images, labels
        )
        undefended = per_image_best_psnr(images, attack.reconstruct(grads).images)
        expanded, expanded_labels = OasisDefense("MR+SH").expand_batch(
            images, labels
        )
        grads, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), expanded, expanded_labels
        )
        defended_result = attack.reconstruct(grads)
        defended = (
            per_image_best_psnr(images, defended_result.images)
            if len(defended_result)
            else np.zeros(len(images))
        )
        assert (defended > 18.0).sum() < (undefended > 18.0).sum()

    def test_no_signal_returns_reasoned_empty(self, crafted):
        model, attack = crafted
        zeros = {
            "imprint.weight": np.zeros(model.imprint.weight.shape),
            "imprint.bias": np.zeros(model.imprint.bias.shape),
        }
        result = attack.reconstruct(zeros)
        assert len(result) == 0
        assert result.reason is not None

    def test_occupancy_reports_bias_gradient_mass(self, crafted, cifar_like, rng):
        model, attack = crafted
        images, labels = cifar_like.sample_batch(4, rng)
        grads, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), images, labels
        )
        result = attack.reconstruct(grads)
        assert result.occupancy is not None
        np.testing.assert_allclose(
            result.occupancy, grads["imprint.bias"][result.neuron_indices]
        )

    def test_reconstruct_before_craft_raises(self):
        with pytest.raises(RuntimeError):
            QBIAttack(4).reconstruct(
                {"imprint.weight": np.zeros((4, 2)), "imprint.bias": np.zeros(4)}
            )
