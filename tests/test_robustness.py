"""Failure injection and adversarial-input robustness.

A defense library must behave sanely on malformed or hostile inputs:
corrupted gradients, degenerate batches, extreme transformation
parameters, and mismatched shapes must raise clearly or degrade
gracefully — never silently produce wrong privacy conclusions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import CAHAttack, ImprintedModel, RTFAttack
from repro.augment import Rotate, Shear, rotate, shear
from repro.defense import OasisDefense
from repro.fl import average_gradients, compute_batch_gradients
from repro.metrics import average_attack_psnr, psnr
from repro.nn import CrossEntropyLoss


class TestCorruptedGradients:
    def _crafted(self, cifar_like):
        model = ImprintedModel(cifar_like.image_shape, 60, cifar_like.num_classes,
                               rng=np.random.default_rng(0))
        attack = RTFAttack(60)
        attack.calibrate_from_public_data(cifar_like.images[:50])
        attack.craft(model)
        return model, attack

    def test_zeroed_gradients_produce_no_reconstructions(self, cifar_like):
        model, attack = self._crafted(cifar_like)
        zeros = {name: np.zeros_like(g) for name, g in model.grad_dict().items()}
        assert len(attack.reconstruct(zeros)) == 0

    def test_nan_gradients_do_not_crash_scoring(self, cifar_like, rng):
        model, attack = self._crafted(cifar_like)
        images, labels = cifar_like.sample_batch(4, rng)
        grads, _ = compute_batch_gradients(model, CrossEntropyLoss(), images, labels)
        grads["imprint.weight"][0] = np.nan
        result = attack.reconstruct(grads)
        # NaN rows clip to NaN images; PSNR scoring must stay finite-safe
        # for the non-corrupted reconstructions.
        finite = [r for r in result.images if np.isfinite(r).all()]
        assert len(finite) >= 1

    def test_missing_imprint_keys_raise_keyerror(self, cifar_like):
        _, attack = self._crafted(cifar_like)
        with pytest.raises(KeyError):
            attack.reconstruct({"head.weight": np.zeros((2, 2))})

    def test_mismatched_update_keys_rejected_by_aggregation(self):
        with pytest.raises(KeyError):
            average_gradients([
                {"a": np.zeros(2)},
                {"a": np.zeros(2), "b": np.zeros(2)},
            ])


class TestDegenerateBatches:
    def test_single_image_batch(self, cifar_like, rng):
        model = ImprintedModel(cifar_like.image_shape, 60, cifar_like.num_classes,
                               rng=np.random.default_rng(0))
        attack = RTFAttack(60)
        attack.calibrate_from_public_data(cifar_like.images[:50])
        attack.craft(model)
        images, labels = cifar_like.sample_batch(1, rng)
        grads, _ = compute_batch_gradients(model, CrossEntropyLoss(), images, labels)
        result = attack.reconstruct(grads)
        assert average_attack_psnr(images, result.images) > 100.0

    def test_duplicate_images_share_every_bin(self, cifar_like, rng):
        # Two identical images can never be separated by any attack: they
        # have identical gradients, so only their (trivial) mixture exists.
        model = ImprintedModel(cifar_like.image_shape, 60, cifar_like.num_classes,
                               rng=np.random.default_rng(0))
        attack = RTFAttack(60)
        attack.calibrate_from_public_data(cifar_like.images[:50])
        attack.craft(model)
        image, label = cifar_like.sample_batch(1, rng)
        images = np.concatenate([image, image])
        labels = np.concatenate([label, label])
        grads, _ = compute_batch_gradients(model, CrossEntropyLoss(), images, labels)
        result = attack.reconstruct(grads)
        # The "mixture" of an image with itself IS the image.
        assert average_attack_psnr(images, result.images) > 100.0

    def test_constant_image_augments_cleanly(self):
        flat = np.full((1, 3, 8, 8), 0.5)
        defense = OasisDefense("MR+SH")
        expanded, _ = defense.expand_batch(flat, np.zeros(1, dtype=np.int64))
        assert np.isfinite(expanded).all()
        np.testing.assert_allclose(expanded.mean(axis=(1, 2, 3)), 0.5, atol=1e-12)


class TestExtremeTransformParameters:
    def test_zero_rotation_is_identity(self, rng):
        image = rng.random((3, 9, 9))
        np.testing.assert_array_equal(rotate(image, 0.0), image)

    def test_large_shear_keeps_range_and_mean(self, rng):
        image = rng.random((3, 16, 16))
        out = shear(image, 10.0)
        assert np.isfinite(out).all()
        assert np.isclose(out.mean(), image.mean(), atol=1e-10)

    def test_negative_angles_supported(self, rng):
        image = rng.random((3, 8, 8))
        np.testing.assert_array_equal(rotate(image, -90.0), rotate(image, 270.0))

    def test_tiny_images(self, rng):
        image = rng.random((1, 2, 2))
        for transform in (Rotate(90), Rotate(45), Shear(0.5)):
            out = transform(image)
            assert out.shape == image.shape
            assert np.isfinite(out).all()


class TestMetricEdgeCases:
    def test_psnr_with_constant_images(self):
        a = np.zeros((3, 4, 4))
        assert np.isfinite(psnr(a, a))

    def test_psnr_extreme_values(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 1e6)
        assert psnr(a, b) < 0  # enormous error -> negative dB, not a crash

    def test_cah_dedup_with_zero_vectors(self, cifar_like):
        model = ImprintedModel(cifar_like.image_shape, 30, cifar_like.num_classes,
                               rng=np.random.default_rng(1))
        attack = CAHAttack(30, seed=2)
        attack.calibrate_from_public_data(cifar_like.images[:50])
        attack.craft(model)
        grads = {
            "imprint.weight": np.zeros((30, cifar_like.flat_dim)),
            "imprint.bias": np.zeros(30),
        }
        grads["imprint.bias"][3] = 1e-3  # signal with an all-zero weight row
        result = attack.reconstruct(grads)
        assert np.isfinite(result.images).all()
