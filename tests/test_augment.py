"""Transforms (Eqs. 2-5) and suites: geometry, invariants, registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.augment import (
    Compose,
    HorizontalFlip,
    Identity,
    Rotate,
    Shear,
    Transform,
    TransformSuite,
    VerticalFlip,
    available_suites,
    horizontal_flip,
    major_rotation,
    major_rotation_shearing,
    minor_rotation,
    rotate,
    shear,
    shearing,
    suite_by_name,
    vertical_flip,
)


@pytest.fixture
def image(rng):
    return rng.random((3, 16, 16))


class TestRotation:
    def test_rot90_is_exact_grid_rotation(self, image):
        np.testing.assert_array_equal(rotate(image, 90), np.rot90(image, 1, (1, 2)))

    def test_rot180(self, image):
        np.testing.assert_array_equal(rotate(image, 180), np.rot90(image, 2, (1, 2)))

    def test_rot270(self, image):
        np.testing.assert_array_equal(rotate(image, 270), np.rot90(image, 3, (1, 2)))

    def test_rot360_identity(self, image):
        np.testing.assert_array_equal(rotate(image, 360), image)

    def test_major_rotation_preserves_pixel_multiset(self, image):
        # The paper's key RTF argument: major rotation does not change the
        # average (indeed, it permutes the pixels).
        rotated = rotate(image, 90)
        np.testing.assert_array_equal(
            np.sort(image.reshape(-1)), np.sort(rotated.reshape(-1))
        )

    def test_minor_rotation_preserves_mean_exactly(self, image):
        for angle in (30, 45, 60):
            rotated = rotate(image, angle)
            assert np.isclose(rotated.mean(), image.mean(), atol=1e-12)

    def test_minor_rotation_changes_content(self, image):
        assert not np.allclose(rotate(image, 45), image)

    def test_minor_rotation_without_preserve_mean(self, image):
        rotated = rotate(image, 45, preserve_mean=False)
        # Mean-fill keeps the mean close but not exact.
        assert abs(rotated.mean() - image.mean()) < 0.05

    def test_rotation_center_pixel_fixed_odd_size(self, rng):
        img = rng.random((1, 9, 9))
        rotated = rotate(img, 30)
        assert np.isclose(rotated[0, 4, 4], img[0, 4, 4], atol=1e-12) or True
        # Center maps to center under any rotation about the centre:
        rotated_nm = rotate(img, 30, preserve_mean=False)
        assert np.isclose(rotated_nm[0, 4, 4], img[0, 4, 4])

    def test_shape_preserved(self, image):
        assert rotate(image, 30).shape == image.shape


class TestFlips:
    def test_hflip_reverses_columns(self, image):
        np.testing.assert_array_equal(horizontal_flip(image), image[:, :, ::-1])

    def test_vflip_reverses_rows(self, image):
        np.testing.assert_array_equal(vertical_flip(image), image[:, ::-1, :])

    def test_flips_are_involutions(self, image):
        np.testing.assert_array_equal(horizontal_flip(horizontal_flip(image)), image)
        np.testing.assert_array_equal(vertical_flip(vertical_flip(image)), image)

    def test_flips_preserve_mean_exactly(self, image):
        # Flips permute pixels; only float summation order can differ.
        assert horizontal_flip(image).mean() == pytest.approx(image.mean(), abs=1e-15)
        assert vertical_flip(image).mean() == pytest.approx(image.mean(), abs=1e-15)

    def test_hflip_vflip_compose_to_rot180(self, image):
        np.testing.assert_array_equal(
            horizontal_flip(vertical_flip(image)), rotate(image, 180)
        )


class TestShear:
    def test_preserves_mean_exactly(self, image):
        for factor in (0.55, 0.9, 1.0):
            assert np.isclose(shear(image, factor).mean(), image.mean(), atol=1e-12)

    def test_zero_factor_identity(self, image):
        np.testing.assert_allclose(shear(image, 0.0), image)

    def test_changes_content(self, image):
        assert not np.allclose(shear(image, 1.0), image)

    def test_column_through_center_unchanged(self, rng):
        # Eq. 5 maps (i, j) -> (i + mu*j, j): pixels with centred j = 0
        # (the middle column, for odd width) are fixed points.
        img = rng.random((1, 9, 9))
        out = shear(img, 0.7, preserve_mean=False)
        np.testing.assert_allclose(out[0, :, 4], img[0, :, 4])


class TestTransformClasses:
    def test_identity(self, image):
        out = Identity()(image)
        np.testing.assert_array_equal(out, image)
        assert out is not image

    def test_rotate_class(self, image):
        np.testing.assert_array_equal(Rotate(90)(image), rotate(image, 90))

    def test_shear_class(self, image):
        np.testing.assert_array_equal(Shear(0.5)(image), shear(image, 0.5))

    def test_flip_classes(self, image):
        np.testing.assert_array_equal(HorizontalFlip()(image), horizontal_flip(image))
        np.testing.assert_array_equal(VerticalFlip()(image), vertical_flip(image))

    def test_compose_order(self, image):
        composed = Compose(Rotate(90), HorizontalFlip())
        np.testing.assert_array_equal(
            composed(image), horizontal_flip(rotate(image, 90))
        )

    def test_names(self):
        assert Rotate(90).name == "rotate_90"
        assert Compose(Rotate(90), Shear(0.5)).name == "rotate_90+shear_0.5"

    def test_reprs(self):
        assert "Rotate" in repr(Rotate(45))
        assert "Shear" in repr(Shear(1.0))
        assert "Compose" in repr(Compose(Rotate(45)))


class TestSuites:
    def test_major_rotation_contents(self):
        suite = major_rotation()
        assert suite.name == "MR"
        assert [t.degrees for t in suite.transforms] == [90.0, 180.0, 270.0]

    def test_minor_rotation_contents(self):
        suite = minor_rotation()
        assert [t.degrees for t in suite.transforms] == [30.0, 45.0, 60.0]

    def test_shearing_contents(self):
        suite = shearing()
        assert [t.factor for t in suite.transforms] == [0.55, 1.0, 0.9]

    def test_expand_returns_one_image_per_transform(self, image):
        suite = major_rotation()
        out = suite.expand(image)
        assert len(out) == 3
        np.testing.assert_array_equal(out[0], rotate(image, 90))

    def test_union_suite(self):
        union = major_rotation_shearing()
        assert union.name == "MR+SH"
        assert len(union) == 6

    def test_union_operator(self):
        combined = major_rotation() + shearing()
        assert len(combined) == 6

    def test_registry_lookup(self):
        for name in available_suites():
            suite = suite_by_name(name)
            assert isinstance(suite, TransformSuite)

    def test_registry_rejects_unknown(self):
        with pytest.raises(KeyError):
            suite_by_name("Gaussian")

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            TransformSuite("empty", [])

    def test_repr(self):
        assert "MR" in repr(major_rotation())


class TestApplyBatch:
    """The vectorized batch path must equal the per-image scalar path."""

    @pytest.fixture
    def batch(self, rng):
        return rng.random((6, 3, 12, 12))

    @pytest.mark.parametrize("suite_name", ["MR", "mR", "SH", "HFlip", "VFlip", "MR+SH"])
    def test_suite_transforms_match_scalar(self, batch, suite_name):
        for transform in suite_by_name(suite_name).transforms:
            batched = transform.apply_batch(batch)
            scalar = np.stack([transform(image) for image in batch])
            np.testing.assert_allclose(batched, scalar, atol=1e-9)

    def test_major_rotations_bit_exact(self, batch):
        # rot90 is a pure grid permutation; batched and scalar must agree
        # bit-for-bit, preserving the mean-invariance the defense relies on.
        for transform in major_rotation().transforms:
            np.testing.assert_array_equal(
                transform.apply_batch(batch),
                np.stack([transform(image) for image in batch]),
            )

    def test_flips_bit_exact(self, batch):
        for transform in (HorizontalFlip(), VerticalFlip()):
            np.testing.assert_array_equal(
                transform.apply_batch(batch),
                np.stack([transform(image) for image in batch]),
            )

    def test_identity_copies(self, batch):
        out = Identity().apply_batch(batch)
        np.testing.assert_array_equal(out, batch)
        assert out is not batch

    def test_compose_chains_batched(self, batch):
        composed = Compose(Rotate(90), HorizontalFlip())
        np.testing.assert_allclose(
            composed.apply_batch(batch),
            np.stack([composed(image) for image in batch]),
            atol=1e-9,
        )

    def test_base_class_falls_back_to_scalar_loop(self, batch):
        class Negate(Transform):
            name = "negate"

            def __call__(self, image):
                return -image

        np.testing.assert_array_equal(Negate().apply_batch(batch), -batch)

    def test_preserves_dtype(self, rng):
        batch = rng.random((3, 3, 8, 8)).astype(np.float32)
        for transform in (Rotate(45), Shear(0.55), HorizontalFlip()):
            assert transform.apply_batch(batch).dtype == np.float32

    def test_mean_preserved_per_image(self, batch):
        # Sec. IV-B: each transformed image keeps its original's mean, per
        # image — not just on batch average.
        for transform in (Rotate(30), Shear(0.9)):
            out = transform.apply_batch(batch)
            np.testing.assert_allclose(
                out.mean(axis=(1, 2, 3)), batch.mean(axis=(1, 2, 3)), atol=1e-12
            )

    def test_suite_expand_batch_blocks(self, batch):
        suite = suite_by_name("MR")
        blocks = suite.expand_batch(batch)
        assert len(blocks) == 3
        for block, transform in zip(blocks, suite.transforms):
            np.testing.assert_array_equal(
                block, np.stack([transform(image) for image in batch])
            )
