"""LOKI attack: block assignment, per-client crafting, aggregate inversion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import ImprintedModel, LOKIAttack
from repro.attacks.loki import DISABLED_BIAS
from repro.defense import OasisDefense
from repro.fl import compute_batch_gradients
from repro.fl.simulator import FederatedSimulation, FederationConfig
from repro.metrics import per_image_best_psnr
from repro.nn import CrossEntropyLoss


def calibrated(num_neurons, dataset, **kwargs):
    attack = LOKIAttack(num_neurons, **kwargs)
    attack.calibrate_from_public_data(dataset.images[:100])
    return attack


class TestBlockAssignment:
    def test_blocks_are_disjoint_and_cover_the_layer(self, cifar_like):
        attack = calibrated(100, cifar_like)
        attack.assign_clients([3, 1, 0, 2])
        covered = []
        for cid in attack.assigned_clients():
            start, stop = attack.client_block(cid)
            covered.extend(range(start, stop))
        assert sorted(covered) == list(range(100))
        assert len(set(covered)) == 100

    def test_assignment_invariant_to_enumeration_order(self, cifar_like):
        a, b = calibrated(64, cifar_like), calibrated(64, cifar_like)
        a.assign_clients([0, 1, 2, 3])
        b.assign_clients([3, 2, 1, 0])
        for cid in range(4):
            assert a.client_block(cid) == b.client_block(cid)

    def test_more_clients_than_neurons_refused(self, cifar_like):
        attack = calibrated(3, cifar_like)
        with pytest.raises(ValueError):
            attack.assign_clients([0, 1, 2, 3])

    def test_unassigned_client_lookup_names_assigned_ids(self, cifar_like):
        attack = calibrated(64, cifar_like)
        attack.assign_clients([0, 1])
        with pytest.raises(KeyError, match="assigned ids"):
            attack.client_block(7)

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            LOKIAttack(16, scale=0.0)


class TestPerClientCrafting:
    def test_only_own_block_is_live(self, cifar_like):
        attack = calibrated(100, cifar_like)
        attack.assign_clients([0, 1, 2, 3])
        model = ImprintedModel(
            cifar_like.image_shape, 100, cifar_like.num_classes,
            rng=np.random.default_rng(0),
        )
        attack.craft_for_client(model, 2)
        weight, bias = model.imprint_parameters()
        start, stop = attack.client_block(2)
        live = np.zeros(100, dtype=bool)
        live[start:stop] = True
        assert np.all(weight[~live] == 0.0)
        assert np.all(bias[~live] == DISABLED_BIAS)
        assert np.all(np.linalg.norm(weight[live], axis=1) > 0.0)

    def test_disabled_rows_never_fire_and_carry_zero_gradient(
        self, cifar_like, rng
    ):
        attack = calibrated(64, cifar_like)
        attack.assign_clients([0, 1])
        model = ImprintedModel(
            cifar_like.image_shape, 64, cifar_like.num_classes,
            rng=np.random.default_rng(0),
        )
        attack.craft_for_client(model, 0)
        images, labels = cifar_like.sample_batch(4, rng)
        grads, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), images, labels
        )
        start, stop = attack.client_block(1)
        assert np.all(grads["imprint.weight"][start:stop] == 0.0)
        assert np.all(grads["imprint.bias"][start:stop] == 0.0)

    def test_block_content_keyed_by_block_not_order(self, cifar_like):
        a, b = calibrated(64, cifar_like, seed=9), calibrated(64, cifar_like, seed=9)
        a.assign_clients([0, 1])
        b.assign_clients([1, 0])
        models = []
        for attack in (a, b):
            model = ImprintedModel(
                cifar_like.image_shape, 64, cifar_like.num_classes,
                rng=np.random.default_rng(0),
            )
            attack.craft_for_client(model, 1)
            models.append(model.imprint_parameters())
        np.testing.assert_array_equal(models[0][0], models[1][0])
        np.testing.assert_array_equal(models[0][1], models[1][1])

    def test_scale_preserves_activation_pattern(self, cifar_like):
        flat = cifar_like.images[:16].reshape(16, -1)
        patterns = []
        for scale in (1.0, 50.0):
            attack = calibrated(64, cifar_like, seed=3, scale=scale)
            model = ImprintedModel(
                cifar_like.image_shape, 64, cifar_like.num_classes,
                rng=np.random.default_rng(0),
            )
            attack.craft(model)
            weight, bias = model.imprint_parameters()
            patterns.append((flat @ weight.T + bias) > 0.0)
        np.testing.assert_array_equal(patterns[0], patterns[1])


class TestAggregateReconstruction:
    @pytest.fixture
    def federation(self, cifar_like):
        attack = calibrated(64, cifar_like, seed=7)

        def factory():
            return ImprintedModel(
                cifar_like.image_shape, 64, cifar_like.num_classes,
                rng=np.random.default_rng(5),
            )

        return FederatedSimulation(
            cifar_like,
            factory,
            FederationConfig(num_clients=4, batch_size=4, seed=0),
            attack=attack,
            target_client_id=None,
        )

    def test_reconstructs_every_client_from_the_aggregate(self, federation):
        record = federation.server.run_round()
        assert all(e.get("from_aggregate") for e in record.attack_events)
        clients = {c.client_id: c for c in federation.server.clients}
        pairs = federation.server.round_reconstructions(0)
        assert len(pairs) == 4
        for client_id, result in pairs:
            own = clients[client_id].last_batch[0]
            best = per_image_best_psnr(own, result.images)
            assert (best > 18.0).sum() >= 1, (
                f"client {client_id} not recovered from the aggregate"
            )

    def test_reconstructions_attribute_to_the_owning_client(self, federation):
        federation.server.run_round()
        clients = {c.client_id: c for c in federation.server.clients}
        for client_id, result in federation.server.round_reconstructions(0):
            own = clients[client_id].last_batch[0]
            other = clients[(client_id + 1) % 4].last_batch[0]
            own_best = per_image_best_psnr(own, result.images).max()
            other_best = per_image_best_psnr(other, result.images).max()
            assert own_best > other_best + 20.0, (
                "a block's reconstructions matched a foreign client's data"
            )

    def test_per_update_inversion_is_skipped(self, federation):
        # The whole point of aggregate reconstruction: it must not depend
        # on per-update access (which secure aggregation would deny).
        record = federation.server.run_round()
        assert all(e.get("from_aggregate") for e in record.attack_events)

    def test_oasis_mr_sh_drops_aggregate_match_rate(self, cifar_like):
        def count_hits(defense):
            attack = calibrated(64, cifar_like, seed=7)

            def factory():
                return ImprintedModel(
                    cifar_like.image_shape, 64, cifar_like.num_classes,
                    rng=np.random.default_rng(5),
                )

            simulation = FederatedSimulation(
                cifar_like,
                factory,
                FederationConfig(num_clients=4, batch_size=4, seed=0),
                defense=defense,
                attack=attack,
                target_client_id=None,
            )
            simulation.server.run_round()
            clients = {c.client_id: c for c in simulation.server.clients}
            hits = 0
            for client_id, result in simulation.server.round_reconstructions(0):
                if len(result) == 0:
                    continue
                own = clients[client_id].last_batch[0]
                hits += int(
                    (per_image_best_psnr(own, result.images) > 18.0).sum()
                )
            return hits

        undefended = count_hits(None)
        defended = count_hits(OasisDefense("MR+SH"))
        assert undefended >= 4
        assert defended < undefended


class TestDegenerateCalibration:
    def test_per_client_results_carry_the_reason(self, cifar_like):
        # Regression: a disarmed layer used to map to an empty dict,
        # indistinguishable from the defense winning; now every assigned
        # client gets a reasoned empty result.
        attack = LOKIAttack(64, seed=3)
        attack.calibrate_from_public_data(
            np.repeat(cifar_like.images[:1], 16, axis=0)
        )
        attack.assign_clients([0, 1])
        model = ImprintedModel(
            cifar_like.image_shape, 64, cifar_like.num_classes,
            rng=np.random.default_rng(0),
        )
        attack.craft_for_client(model, 0)
        grads = {
            "imprint.weight": np.zeros(model.imprint.weight.shape),
            "imprint.bias": np.zeros(model.imprint.bias.shape),
        }
        per_client = attack.reconstruct_per_client(grads)
        assert sorted(per_client) == [0, 1]
        for result in per_client.values():
            assert len(result) == 0
            assert "degenerate trap calibration" in result.reason

    def test_saturated_block_yields_reasoned_empty_not_garbage(self, cifar_like):
        attack = LOKIAttack(64, seed=3)
        attack.calibrate_from_public_data(cifar_like.images[:64])
        attack.assign_clients([0, 1])
        model = ImprintedModel(
            cifar_like.image_shape, 64, cifar_like.num_classes,
            rng=np.random.default_rng(0),
        )
        attack.craft(model)
        # Client 0's whole block fires (mistuned / saturated); client 1's
        # block is silent.
        bias_grad = np.zeros(64)
        start, stop = attack.client_block(0)
        bias_grad[start:stop] = 0.5
        grads = {
            "imprint.weight": np.ones(model.imprint.weight.shape),
            "imprint.bias": bias_grad,
        }
        per_client = attack.reconstruct_per_client(grads)
        assert sorted(per_client) == [0]
        assert len(per_client[0]) == 0
        assert "near-total activation" in per_client[0].reason


class TestSingleVictimFallback:
    def test_craft_without_fleet_becomes_one_block(self, cifar_like, rng):
        attack = calibrated(128, cifar_like, seed=7)
        model = ImprintedModel(
            cifar_like.image_shape, 128, cifar_like.num_classes,
            rng=np.random.default_rng(11),
        )
        attack.craft(model)
        assert attack.assigned_clients() == [0]
        images, labels = cifar_like.sample_batch(8, rng)
        grads, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), images, labels
        )
        result = attack.reconstruct(grads)
        best = per_image_best_psnr(images, result.images)
        assert (best > 18.0).sum() >= 1
        assert best.max() > 100.0

    def test_reconstruct_before_craft_raises(self):
        with pytest.raises(RuntimeError):
            LOKIAttack(8).reconstruct(
                {"imprint.weight": np.zeros((8, 2)), "imprint.bias": np.zeros(8)}
            )
