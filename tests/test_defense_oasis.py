"""OASIS defense: Eq. 7 batch expansion, labels, companion indexing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.augment import major_rotation, rotate, suite_by_name
from repro.defense import NoDefense, OasisDefense


@pytest.fixture
def batch(rng):
    return rng.random((4, 3, 8, 8)), np.array([0, 1, 2, 3])


class TestExpansion:
    def test_size_matches_expansion_factor(self, batch):
        images, labels = batch
        defense = OasisDefense("MR")
        expanded, expanded_labels = defense.expand_batch(images, labels)
        assert len(expanded) == 4 * defense.expansion_factor()
        assert len(expanded_labels) == len(expanded)

    def test_expansion_factor(self):
        assert OasisDefense("MR").expansion_factor() == 4  # orig + 3 rotations
        assert OasisDefense("HFlip").expansion_factor() == 2
        assert OasisDefense("MR+SH").expansion_factor() == 7

    def test_originals_first(self, batch):
        images, labels = batch
        expanded, expanded_labels = OasisDefense("MR").expand_batch(images, labels)
        np.testing.assert_array_equal(expanded[:4], images)
        np.testing.assert_array_equal(expanded_labels[:4], labels)

    def test_transformed_blocks_in_suite_order(self, batch):
        images, labels = batch
        expanded, _ = OasisDefense("MR").expand_batch(images, labels)
        np.testing.assert_array_equal(expanded[4], rotate(images[0], 90))
        np.testing.assert_array_equal(expanded[8], rotate(images[0], 180))
        np.testing.assert_array_equal(expanded[12], rotate(images[0], 270))

    def test_labels_copied_to_transforms(self, batch):
        # Eq. 7: "the data points in X'_t are given the same label as x_t".
        images, labels = batch
        defense = OasisDefense("MR+SH")
        _, expanded_labels = defense.expand_batch(images, labels)
        for t in range(4):
            for companion in defense.companions_of(t, 4):
                assert expanded_labels[companion] == labels[t]

    def test_companions_of_indexing(self, batch):
        images, labels = batch
        defense = OasisDefense("MR")
        expanded, _ = defense.expand_batch(images, labels)
        for t in range(4):
            for k, companion in enumerate(defense.companions_of(t, 4)):
                transform = defense.suite.transforms[k]
                np.testing.assert_array_equal(expanded[companion], transform(images[t]))

    def test_exclude_original_ablation(self, batch):
        images, labels = batch
        defense = OasisDefense("MR", include_original=False)
        expanded, _ = defense.expand_batch(images, labels)
        assert len(expanded) == 12
        np.testing.assert_array_equal(expanded[0], rotate(images[0], 90))
        assert defense.expansion_factor() == 3

    def test_accepts_suite_object(self, batch):
        images, labels = batch
        defense = OasisDefense(major_rotation())
        expanded, _ = defense.expand_batch(images, labels)
        assert len(expanded) == 16

    def test_name_matches_suite(self):
        assert OasisDefense("MR+SH").name == "MR+SH"
        assert OasisDefense(suite_by_name("SH")).name == "SH"

    def test_process_batch_hook(self, batch, rng):
        images, labels = batch
        defense = OasisDefense("VFlip")
        out_images, out_labels = defense.process_batch(images, labels, rng)
        assert len(out_images) == 8

    def test_gradient_hook_is_identity(self, batch, rng):
        defense = OasisDefense("MR")
        grads = {"w": np.ones(3)}
        assert defense.process_gradients(grads, rng) is grads

    def test_dtype_preserved(self, rng):
        images = rng.random((2, 3, 8, 8)).astype(np.float32)
        defense = OasisDefense("MR")
        expanded, _ = defense.expand_batch(images, np.array([0, 1]))
        assert expanded.dtype == np.float32

    def test_repr(self):
        assert "MR" in repr(OasisDefense("MR"))


class TestNoDefense:
    def test_identity(self, batch, rng):
        images, labels = batch
        defense = NoDefense()
        out_images, out_labels = defense.process_batch(images, labels, rng)
        np.testing.assert_array_equal(out_images, images)
        np.testing.assert_array_equal(out_labels, labels)
        assert defense.name == "WO"
