"""Behavioural tests for layers: Linear, Conv2d, BatchNorm2d, containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.tensor import Tensor


class TestLinear:
    def test_forward_matches_manual(self, rng):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        x = rng.standard_normal((5, 4))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).numpy(), expected)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        x = rng.standard_normal((2, 4))
        np.testing.assert_allclose(layer(Tensor(x)).numpy(), x @ layer.weight.data.T)

    def test_weight_shape(self):
        layer = Linear(7, 2)
        assert layer.weight.shape == (2, 7)
        assert layer.bias.shape == (2,)

    def test_deterministic_init(self):
        a = Linear(4, 3, rng=np.random.default_rng(42))
        b = Linear(4, 3, rng=np.random.default_rng(42))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestConv2dLayer:
    def test_shapes(self, rng):
        layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=np.random.default_rng(0))
        out = layer(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_gradients_flow(self, rng):
        layer = Conv2d(2, 4, 3, padding=1, rng=np.random.default_rng(0))
        out = layer(Tensor(rng.standard_normal((1, 2, 5, 5))))
        (out ** 2).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestBatchNormLayer:
    def test_normalizes_in_train_mode(self, rng):
        layer = BatchNorm2d(4)
        out = layer(Tensor(rng.standard_normal((16, 4, 3, 3)) * 3.0 + 1.0))
        np.testing.assert_allclose(out.numpy().mean(axis=(0, 2, 3)), 0.0, atol=1e-10)

    def test_eval_mode_uses_running_stats(self, rng):
        layer = BatchNorm2d(2)
        x = rng.standard_normal((8, 2, 4, 4)) + 3.0
        for _ in range(50):
            layer(Tensor(x))
        layer.eval()
        out = layer(Tensor(x)).numpy()
        # After many updates running stats approach batch stats: output ~ N(0,1).
        assert abs(out.mean()) < 0.2

    def test_state_includes_running_stats(self):
        layer = BatchNorm2d(3)
        state_keys = set(Sequential(layer).state_dict())
        assert any("running_mean" in k for k in state_keys)
        assert any("running_var" in k for k in state_keys)


class TestContainers:
    def test_sequential_order(self, rng):
        model = Sequential(Linear(4, 8, rng=np.random.default_rng(0)), ReLU(), Linear(8, 2, rng=np.random.default_rng(1)))
        out = model(Tensor(rng.standard_normal((3, 4))))
        assert out.shape == (3, 2)

    def test_sequential_indexing(self):
        relu = ReLU()
        model = Sequential(Identity(), relu)
        assert model[1] is relu
        assert len(model) == 2

    def test_sequential_iteration(self):
        layers = [Identity(), ReLU(), Identity()]
        model = Sequential(*layers)
        assert list(model) == layers

    def test_sequential_insert(self, rng):
        model = Sequential(Linear(4, 4, rng=np.random.default_rng(0)))
        model.insert(0, Identity())
        assert isinstance(model[0], Identity)
        assert len(model) == 2
        out = model(Tensor(rng.standard_normal((2, 4))))
        assert out.shape == (2, 4)

    def test_sequential_registers_parameters(self):
        model = Sequential(Linear(3, 3), Linear(3, 3))
        assert len(list(model.parameters())) == 4

    def test_flatten_layer(self):
        out = Flatten()(Tensor(np.zeros((2, 3, 4, 5))))
        assert out.shape == (2, 60)

    def test_identity(self, rng):
        x = rng.standard_normal((2, 2))
        np.testing.assert_array_equal(Identity()(Tensor(x)).numpy(), x)

    def test_pool_layers(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 4, 4)))
        assert MaxPool2d(2)(x).shape == (1, 2, 2, 2)
        assert AvgPool2d(2)(x).shape == (1, 2, 2, 2)
        assert GlobalAvgPool2d()(x).shape == (1, 2)


class TestValidation:
    def test_linear_rejects_bad_imprint_shapes(self):
        # covered more deeply in attack tests; here: constructor sanity
        layer = Linear(4, 3)
        assert layer.in_features == 4
        assert layer.out_features == 3

    def test_relu_layer(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_array_equal(out.numpy(), [0.0, 2.0])
