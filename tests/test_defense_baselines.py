"""Baseline defenses: DP noise, gradient pruning, ATS transform-replace."""

from __future__ import annotations

import numpy as np
import pytest

from repro.defense import (
    DPGradientDefense,
    GradientPruningDefense,
    NoDefense,
    OasisDefense,
    TransformReplaceDefense,
    defense_lineup,
)


@pytest.fixture
def gradients(rng):
    return {
        "layer.weight": rng.standard_normal((8, 4)),
        "layer.bias": rng.standard_normal(8),
    }


class TestDPGradientDefense:
    def test_clipping_bounds_norm(self, gradients, rng):
        defense = DPGradientDefense(clip_norm=0.5, noise_multiplier=0.0)
        out = defense.process_gradients(gradients, rng)
        total = np.sqrt(sum(np.sum(g ** 2) for g in out.values()))
        assert total <= 0.5 + 1e-9

    def test_small_gradients_not_scaled_up(self, rng):
        small = {"w": np.full(4, 1e-3)}
        defense = DPGradientDefense(clip_norm=10.0, noise_multiplier=0.0)
        out = defense.process_gradients(small, rng)
        np.testing.assert_allclose(out["w"], small["w"])

    def test_noise_changes_gradients(self, gradients, rng):
        defense = DPGradientDefense(clip_norm=1.0, noise_multiplier=1.0)
        out = defense.process_gradients(gradients, rng)
        assert not np.allclose(out["layer.weight"], gradients["layer.weight"])

    def test_noise_scale(self, rng):
        defense = DPGradientDefense(clip_norm=2.0, noise_multiplier=0.5)
        zeros = {"w": np.zeros(200_00)}
        out = defense.process_gradients(zeros, rng)
        # sigma = multiplier * clip = 1.0
        assert np.std(out["w"]) == pytest.approx(1.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            DPGradientDefense(clip_norm=0.0)
        with pytest.raises(ValueError):
            DPGradientDefense(noise_multiplier=-1.0)

    def test_name_mentions_sigma(self):
        assert "0.3" in DPGradientDefense(noise_multiplier=0.3).name


class TestGradientPruning:
    def test_prunes_requested_fraction(self, rng):
        grads = {"w": rng.standard_normal(1000)}
        defense = GradientPruningDefense(prune_fraction=0.9)
        out = defense.process_gradients(grads, rng)
        assert (out["w"] == 0.0).mean() == pytest.approx(0.9, abs=0.01)

    def test_keeps_largest_magnitudes(self, rng):
        grads = {"w": np.array([0.1, -5.0, 0.2, 3.0])}
        defense = GradientPruningDefense(prune_fraction=0.5)
        out = defense.process_gradients(grads, rng)
        np.testing.assert_array_equal(out["w"], [0.0, -5.0, 0.0, 3.0])

    def test_zero_fraction_is_identity(self, gradients, rng):
        defense = GradientPruningDefense(prune_fraction=0.0)
        out = defense.process_gradients(gradients, rng)
        np.testing.assert_array_equal(out["layer.weight"], gradients["layer.weight"])

    def test_validation(self):
        with pytest.raises(ValueError):
            GradientPruningDefense(prune_fraction=1.0)


class TestTransformReplace:
    def test_batch_size_unchanged(self, rng):
        images = rng.random((6, 3, 8, 8))
        labels = np.arange(6)
        defense = TransformReplaceDefense("MR", seed=0)
        out_images, out_labels = defense.process_batch(images, labels, rng)
        assert out_images.shape == images.shape
        np.testing.assert_array_equal(out_labels, labels)

    def test_images_actually_transformed(self, rng):
        images = rng.random((6, 3, 8, 8))
        defense = TransformReplaceDefense("MR", seed=0)
        out_images, _ = defense.process_batch(images, np.arange(6), rng)
        # Rotations of random images differ from the originals.
        assert not np.allclose(out_images, images)

    def test_each_output_is_some_suite_transform(self, rng):
        images = rng.random((3, 3, 8, 8))
        defense = TransformReplaceDefense("MR", seed=0)
        out_images, _ = defense.process_batch(images, np.arange(3), rng)
        for i in range(3):
            candidates = [t(images[i]) for t in defense.suite.transforms]
            assert any(np.allclose(out_images[i], c) for c in candidates)


class TestLineup:
    def test_wo_maps_to_no_defense(self):
        lineup = defense_lineup(["WO", "MR"])
        assert isinstance(lineup[0], NoDefense)
        assert isinstance(lineup[1], OasisDefense)

    def test_names_preserved(self):
        lineup = defense_lineup(["WO", "MR+SH"])
        assert [d.name for d in lineup] == ["WO", "MR+SH"]

    def test_typo_raises_name_listing_error(self):
        # Registry-backed: no more opaque KeyError on a misspelled arm.
        from repro.defense import UnknownDefenseError

        with pytest.raises(UnknownDefenseError, match="registered defenses"):
            defense_lineup(["WO", "MRR"])

    def test_gradient_and_composed_arms_resolve(self):
        from repro.defense import DefensePipeline, DPSGDDefense

        lineup = defense_lineup(["dpsgd", "MR>dpsgd"])
        assert isinstance(lineup[0], DPSGDDefense)
        assert isinstance(lineup[1], DefensePipeline)
