"""Shared fixtures: small deterministic datasets and generators.

Also installs the ``slow`` marker policy: scale-oriented protocol tests are
marked ``@pytest.mark.slow`` and skipped by default (tier-1 stays fast);
select them explicitly with ``-m slow`` (or any ``-m`` expression).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_synthetic_dataset, synthetic_cifar100, synthetic_imagenet


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: scale-oriented protocol tests, skipped unless selected with -m",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("-m", default=""):
        return  # an explicit marker expression overrides the default gate
    skip_slow = pytest.mark.skip(reason="slow scale test: select with -m slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset():
    """16x16, 4 classes, 6/class — fast enough for any unit test."""
    return make_synthetic_dataset(
        num_classes=4, samples_per_class=6, image_size=16, seed=77, name="tiny"
    )


@pytest.fixture(scope="session")
def cifar_like():
    """Small CIFAR100 stand-in used by attack/defense tests."""
    return synthetic_cifar100(samples_per_class=2, seed=2002)


@pytest.fixture(scope="session")
def imagenet_like():
    """Small ImageNet stand-in (reduced to 32px for speed)."""
    return synthetic_imagenet(samples_per_class=8, image_size=32, seed=1001)
