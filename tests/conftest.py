"""Shared fixtures: small deterministic datasets and generators.

Also installs the gated-marker policy: scale-oriented protocol tests
(``@pytest.mark.slow``) and full sweep grids / benchmark-sized runs
(``@pytest.mark.sweep_scale``) are skipped by default (tier-1 stays fast);
select them explicitly with ``-m slow`` / ``-m sweep_scale`` (or any ``-m``
expression).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_synthetic_dataset, synthetic_cifar100, synthetic_imagenet


# Markers gated out of the default (tier-1) run; select explicitly with -m.
GATED_MARKERS = {
    "slow": "scale-oriented protocol tests, skipped unless selected with -m",
    "sweep_scale": (
        "full attack x defense x scenario sweep grids and benchmark-sized "
        "runs, skipped unless selected with -m"
    ),
    "fleet_scale": (
        "sustained multi-round federation soaks at 1k+ active clients over "
        "lazy fleets, skipped unless selected with -m"
    ),
}


def pytest_configure(config):
    for marker, description in GATED_MARKERS.items():
        config.addinivalue_line("markers", f"{marker}: {description}")


def pytest_collection_modifyitems(config, items):
    expression = config.getoption("-m", default="") or ""
    for item in items:
        gated = GATED_MARKERS.keys() & item.keywords
        if not gated:
            continue
        if any(marker in expression for marker in gated):
            # The -m expression names this item's gated marker, so the
            # user is deciding about it explicitly — let pytest's own
            # selection apply.  Unmentioned gated markers stay skipped:
            # `-m "not slow"` must not silently unleash sweep_scale grids.
            continue
        marker = sorted(gated)[0]
        item.add_marker(
            pytest.mark.skip(reason=f"{marker} test: select with -m {marker}")
        )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset():
    """16x16, 4 classes, 6/class — fast enough for any unit test."""
    return make_synthetic_dataset(
        num_classes=4, samples_per_class=6, image_size=16, seed=77, name="tiny"
    )


@pytest.fixture(scope="session")
def cifar_like():
    """Small CIFAR100 stand-in used by attack/defense tests."""
    return synthetic_cifar100(samples_per_class=2, seed=2002)


@pytest.fixture(scope="session")
def imagenet_like():
    """Small ImageNet stand-in (reduced to 32px for speed)."""
    return synthetic_imagenet(samples_per_class=8, image_size=32, seed=1001)
