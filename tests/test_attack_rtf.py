"""Robbing-the-Fed attack: bins, crafting, reconstruction, defense impact."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import ImprintedModel, RTFAttack
from repro.defense import OasisDefense
from repro.fl import compute_batch_gradients
from repro.metrics import PSNR_CEILING, average_attack_psnr, per_image_best_psnr
from repro.nn import CrossEntropyLoss


@pytest.fixture
def crafted(cifar_like, rng):
    num_neurons = 200
    model = ImprintedModel(
        cifar_like.image_shape, num_neurons, cifar_like.num_classes,
        rng=np.random.default_rng(11),
    )
    attack = RTFAttack(num_neurons)
    attack.calibrate_from_public_data(cifar_like.images[:100])
    attack.craft(model)
    return model, attack


class TestCrafting:
    def test_needs_two_neurons(self):
        with pytest.raises(ValueError):
            RTFAttack(1)

    def test_neuron_count_must_match_model(self, cifar_like, rng):
        model = ImprintedModel(cifar_like.image_shape, 64, 10, rng=rng)
        with pytest.raises(ValueError):
            RTFAttack(65).craft(model)

    def test_weight_rows_all_equal_measurement(self, crafted):
        model, attack = crafted
        weight, _ = model.imprint_parameters()
        np.testing.assert_allclose(weight, np.tile(weight[0], (len(weight), 1)))
        # Measurement = mean pixel: each row sums to `scale`.
        assert weight[0].sum() == pytest.approx(attack.scale)

    def test_biases_strictly_decreasing(self, crafted):
        # b_i = -q_i with q ascending.
        _, bias = crafted[0].imprint_parameters()
        assert np.all(np.diff(bias) < 0)

    def test_bin_edges_sorted_and_centered(self, crafted):
        _, attack = crafted
        edges = attack.bin_edges()
        assert np.all(np.diff(edges) > 0)
        assert edges[0] < attack.measurement_mean < edges[-1]

    def test_calibration_from_public_data(self, cifar_like):
        attack = RTFAttack(10)
        attack.calibrate_from_public_data(cifar_like.images)
        mean, std = cifar_like.pixel_statistics()
        assert attack.measurement_mean == pytest.approx(mean)
        assert attack.measurement_std == pytest.approx(std, rel=1e-6)

    def test_reconstruct_before_craft_raises(self):
        with pytest.raises(RuntimeError):
            RTFAttack(4).reconstruct({"imprint.weight": np.zeros((4, 2)),
                                      "imprint.bias": np.zeros(4)})


class TestReconstruction:
    def test_lone_bin_samples_reconstructed_perfectly(self, crafted, cifar_like, rng):
        model, attack = crafted
        images, labels = cifar_like.sample_batch(4, rng)
        grads, _ = compute_batch_gradients(model, CrossEntropyLoss(), images, labels)
        result = attack.reconstruct(grads)
        per_image = per_image_best_psnr(images, result.images)
        # With 4 samples and 200 bins every sample should be alone in a bin.
        assert np.all(per_image == pytest.approx(PSNR_CEILING))

    def test_average_psnr_perfect_small_batch(self, crafted, cifar_like, rng):
        model, attack = crafted
        images, labels = cifar_like.sample_batch(4, rng)
        grads, _ = compute_batch_gradients(model, CrossEntropyLoss(), images, labels)
        result = attack.reconstruct(grads)
        assert average_attack_psnr(images, result.images) > 120.0

    def test_bin_of_matches_quantile_search(self, crafted, cifar_like, rng):
        _, attack = crafted
        images, _ = cifar_like.sample_batch(4, rng)
        bins = attack.bin_of(images)
        flat = images.reshape(4, -1)
        for i in range(4):
            measurement = flat[i].mean()
            expected_bin = int(np.searchsorted(attack.bin_edges(), measurement)) - 1
            assert bins[i] == expected_bin

    def test_activated_prefix_length_matches_bin(self, crafted, cifar_like, rng):
        # A sample in bin k activates exactly the neurons with q_i below its
        # measurement, i.e. the first k+1 of them.
        model, attack = crafted
        images, _ = cifar_like.sample_batch(4, rng)
        weight, bias = model.imprint_parameters()
        flat = images.reshape(4, -1)
        activations = ((flat @ weight.T + bias) > 0).sum(axis=1)
        bins = attack.bin_of(images)
        np.testing.assert_array_equal(activations, bins + 1)

    def test_no_signal_returns_empty(self, crafted):
        model, attack = crafted
        zero_grads = {
            "imprint.weight": np.zeros(model.imprint.weight.shape),
            "imprint.bias": np.zeros(model.imprint.bias.shape),
        }
        result = attack.reconstruct(zero_grads)
        assert len(result) == 0
        assert result.reason == "no occupied measurement bin"

    def test_occupancy_reports_raw_bin_mass(self, crafted, cifar_like, rng):
        model, attack = crafted
        images, labels = cifar_like.sample_batch(4, rng)
        grads, _ = compute_batch_gradients(model, CrossEntropyLoss(), images, labels)
        result = attack.reconstruct(grads)
        bias_grad = grads["imprint.bias"]
        bias_diff = bias_grad[:-1] - bias_grad[1:]
        assert result.occupancy is not None
        np.testing.assert_allclose(
            result.occupancy, bias_diff[result.neuron_indices]
        )

    def test_near_empty_bin_amplification_is_clamped(self, cifar_like):
        # Regression: a bin whose bias-gradient difference sits barely
        # above signal_tolerance used to divide by it directly, amplifying
        # gradient noise by up to 1/tolerance into garbage pixels.  With a
        # denominator floor the amplification is bounded at 1/floor in
        # BOTH the clipped-images and raw paths, and occupancy still
        # reports the raw (unclamped) bin mass.
        floor = 1e-3
        attack = RTFAttack(4, signal_tolerance=1e-10, denominator_floor=floor)
        model = ImprintedModel(cifar_like.image_shape, 4, 10,
                               rng=np.random.default_rng(0))
        attack.craft(model)
        d = model.flat_dim
        noise = np.full((4, d), 1e-6)
        weak = 1e-8  # above tolerance, below the floor
        grads = {
            "imprint.weight": np.cumsum(noise[::-1], axis=0)[::-1].copy(),
            "imprint.bias": np.array([3 * weak, 2 * weak, weak, 0.0]),
        }
        result = attack.reconstruct(grads)
        assert len(result) == 3
        np.testing.assert_allclose(result.occupancy, [weak, weak, weak])
        # Unclamped, each raw pixel would be 1e-6 / 1e-8 = 100; clamped it
        # is 1e-6 / 1e-3 = 1e-3 — in range, no longer garbage.
        assert np.abs(result.raw).max() <= 1e-6 / floor + 1e-12
        np.testing.assert_allclose(
            result.images.reshape(3, -1), result.raw.clip(0.0, 1.0)
        )

    def test_denominator_floor_below_tolerance_refused(self):
        with pytest.raises(ValueError):
            RTFAttack(4, signal_tolerance=1e-6, denominator_floor=1e-9)

    def test_default_floor_keeps_healthy_bins_exact(self, crafted, cifar_like, rng):
        # The default floor equals signal_tolerance, so every occupied bin
        # divides by its true denominator — no numeric drift on the
        # well-conditioned path.
        model, attack = crafted
        images, labels = cifar_like.sample_batch(4, rng)
        grads, _ = compute_batch_gradients(model, CrossEntropyLoss(), images, labels)
        result = attack.reconstruct(grads)
        bias_grad = grads["imprint.bias"]
        weight_grad = grads["imprint.weight"]
        bias_diff = bias_grad[:-1] - bias_grad[1:]
        weight_diff = weight_grad[:-1] - weight_grad[1:]
        expected = (
            weight_diff[result.neuron_indices]
            / bias_diff[result.neuron_indices, None]
        )
        np.testing.assert_array_equal(result.raw, expected)

    def test_reconstructions_clipped_to_unit_range(self, crafted, cifar_like, rng):
        model, attack = crafted
        images, labels = cifar_like.sample_batch(4, rng)
        grads, _ = compute_batch_gradients(model, CrossEntropyLoss(), images, labels)
        result = attack.reconstruct(grads)
        assert result.images.min() >= 0.0
        assert result.images.max() <= 1.0


class TestAgainstOasis:
    def test_major_rotation_forces_same_bin(self, crafted, cifar_like, rng):
        _, attack = crafted
        images, _ = cifar_like.sample_batch(4, rng)
        defense = OasisDefense("MR")
        expanded, _ = defense.expand_batch(images, np.zeros(4, dtype=np.int64))
        bins = attack.bin_of(expanded)
        for t in range(4):
            for companion in defense.companions_of(t, 4):
                assert bins[companion] == bins[t], (
                    "a major rotation landed in a different RTF bin"
                )

    def test_oasis_mr_blocks_perfect_reconstruction(self, crafted, cifar_like, rng):
        model, attack = crafted
        images, labels = cifar_like.sample_batch(4, rng)
        expanded, expanded_labels = OasisDefense("MR").expand_batch(images, labels)
        grads, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), expanded, expanded_labels
        )
        result = attack.reconstruct(grads)
        per_image = per_image_best_psnr(images, result.images)
        assert np.all(per_image < 45.0), "an original leaked through OASIS-MR"

    def test_oasis_reduces_average_psnr_by_100db(self, crafted, cifar_like, rng):
        model, attack = crafted
        images, labels = cifar_like.sample_batch(4, rng)
        grads, _ = compute_batch_gradients(model, CrossEntropyLoss(), images, labels)
        undefended = average_attack_psnr(images, attack.reconstruct(grads).images)
        expanded, expanded_labels = OasisDefense("MR").expand_batch(images, labels)
        grads, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), expanded, expanded_labels
        )
        defended = average_attack_psnr(images, attack.reconstruct(grads).images)
        assert undefended - defended > 100.0

    @pytest.mark.parametrize("suite", ["mR", "SH", "HFlip", "VFlip"])
    def test_all_transforms_defend(self, crafted, cifar_like, rng, suite):
        model, attack = crafted
        images, labels = cifar_like.sample_batch(4, rng)
        expanded, expanded_labels = OasisDefense(suite).expand_batch(images, labels)
        grads, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), expanded, expanded_labels
        )
        result = attack.reconstruct(grads)
        assert average_attack_psnr(images, result.images) < 60.0
