"""Robbing-the-Fed attack: bins, crafting, reconstruction, defense impact."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import ImprintedModel, RTFAttack
from repro.defense import OasisDefense
from repro.fl import compute_batch_gradients
from repro.metrics import PSNR_CEILING, average_attack_psnr, per_image_best_psnr
from repro.nn import CrossEntropyLoss


@pytest.fixture
def crafted(cifar_like, rng):
    num_neurons = 200
    model = ImprintedModel(
        cifar_like.image_shape, num_neurons, cifar_like.num_classes,
        rng=np.random.default_rng(11),
    )
    attack = RTFAttack(num_neurons)
    attack.calibrate_from_public_data(cifar_like.images[:100])
    attack.craft(model)
    return model, attack


class TestCrafting:
    def test_needs_two_neurons(self):
        with pytest.raises(ValueError):
            RTFAttack(1)

    def test_neuron_count_must_match_model(self, cifar_like, rng):
        model = ImprintedModel(cifar_like.image_shape, 64, 10, rng=rng)
        with pytest.raises(ValueError):
            RTFAttack(65).craft(model)

    def test_weight_rows_all_equal_measurement(self, crafted):
        model, attack = crafted
        weight, _ = model.imprint_parameters()
        np.testing.assert_allclose(weight, np.tile(weight[0], (len(weight), 1)))
        # Measurement = mean pixel: each row sums to `scale`.
        assert weight[0].sum() == pytest.approx(attack.scale)

    def test_biases_strictly_decreasing(self, crafted):
        # b_i = -q_i with q ascending.
        _, bias = crafted[0].imprint_parameters()
        assert np.all(np.diff(bias) < 0)

    def test_bin_edges_sorted_and_centered(self, crafted):
        _, attack = crafted
        edges = attack.bin_edges()
        assert np.all(np.diff(edges) > 0)
        assert edges[0] < attack.measurement_mean < edges[-1]

    def test_calibration_from_public_data(self, cifar_like):
        attack = RTFAttack(10)
        attack.calibrate_from_public_data(cifar_like.images)
        mean, std = cifar_like.pixel_statistics()
        assert attack.measurement_mean == pytest.approx(mean)
        assert attack.measurement_std == pytest.approx(std, rel=1e-6)

    def test_reconstruct_before_craft_raises(self):
        with pytest.raises(RuntimeError):
            RTFAttack(4).reconstruct({"imprint.weight": np.zeros((4, 2)),
                                      "imprint.bias": np.zeros(4)})


class TestReconstruction:
    def test_lone_bin_samples_reconstructed_perfectly(self, crafted, cifar_like, rng):
        model, attack = crafted
        images, labels = cifar_like.sample_batch(4, rng)
        grads, _ = compute_batch_gradients(model, CrossEntropyLoss(), images, labels)
        result = attack.reconstruct(grads)
        per_image = per_image_best_psnr(images, result.images)
        # With 4 samples and 200 bins every sample should be alone in a bin.
        assert np.all(per_image == pytest.approx(PSNR_CEILING))

    def test_average_psnr_perfect_small_batch(self, crafted, cifar_like, rng):
        model, attack = crafted
        images, labels = cifar_like.sample_batch(4, rng)
        grads, _ = compute_batch_gradients(model, CrossEntropyLoss(), images, labels)
        result = attack.reconstruct(grads)
        assert average_attack_psnr(images, result.images) > 120.0

    def test_bin_of_matches_quantile_search(self, crafted, cifar_like, rng):
        _, attack = crafted
        images, _ = cifar_like.sample_batch(4, rng)
        bins = attack.bin_of(images)
        flat = images.reshape(4, -1)
        for i in range(4):
            measurement = flat[i].mean()
            expected_bin = int(np.searchsorted(attack.bin_edges(), measurement)) - 1
            assert bins[i] == expected_bin

    def test_activated_prefix_length_matches_bin(self, crafted, cifar_like, rng):
        # A sample in bin k activates exactly the neurons with q_i below its
        # measurement, i.e. the first k+1 of them.
        model, attack = crafted
        images, _ = cifar_like.sample_batch(4, rng)
        weight, bias = model.imprint_parameters()
        flat = images.reshape(4, -1)
        activations = ((flat @ weight.T + bias) > 0).sum(axis=1)
        bins = attack.bin_of(images)
        np.testing.assert_array_equal(activations, bins + 1)

    def test_no_signal_returns_empty(self, crafted):
        model, attack = crafted
        zero_grads = {
            "imprint.weight": np.zeros(model.imprint.weight.shape),
            "imprint.bias": np.zeros(model.imprint.bias.shape),
        }
        result = attack.reconstruct(zero_grads)
        assert len(result) == 0

    def test_reconstructions_clipped_to_unit_range(self, crafted, cifar_like, rng):
        model, attack = crafted
        images, labels = cifar_like.sample_batch(4, rng)
        grads, _ = compute_batch_gradients(model, CrossEntropyLoss(), images, labels)
        result = attack.reconstruct(grads)
        assert result.images.min() >= 0.0
        assert result.images.max() <= 1.0


class TestAgainstOasis:
    def test_major_rotation_forces_same_bin(self, crafted, cifar_like, rng):
        _, attack = crafted
        images, _ = cifar_like.sample_batch(4, rng)
        defense = OasisDefense("MR")
        expanded, _ = defense.expand_batch(images, np.zeros(4, dtype=np.int64))
        bins = attack.bin_of(expanded)
        for t in range(4):
            for companion in defense.companions_of(t, 4):
                assert bins[companion] == bins[t], (
                    "a major rotation landed in a different RTF bin"
                )

    def test_oasis_mr_blocks_perfect_reconstruction(self, crafted, cifar_like, rng):
        model, attack = crafted
        images, labels = cifar_like.sample_batch(4, rng)
        expanded, expanded_labels = OasisDefense("MR").expand_batch(images, labels)
        grads, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), expanded, expanded_labels
        )
        result = attack.reconstruct(grads)
        per_image = per_image_best_psnr(images, result.images)
        assert np.all(per_image < 45.0), "an original leaked through OASIS-MR"

    def test_oasis_reduces_average_psnr_by_100db(self, crafted, cifar_like, rng):
        model, attack = crafted
        images, labels = cifar_like.sample_batch(4, rng)
        grads, _ = compute_batch_gradients(model, CrossEntropyLoss(), images, labels)
        undefended = average_attack_psnr(images, attack.reconstruct(grads).images)
        expanded, expanded_labels = OasisDefense("MR").expand_batch(images, labels)
        grads, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), expanded, expanded_labels
        )
        defended = average_attack_psnr(images, attack.reconstruct(grads).images)
        assert undefended - defended > 100.0

    @pytest.mark.parametrize("suite", ["mR", "SH", "HFlip", "VFlip"])
    def test_all_transforms_defend(self, crafted, cifar_like, rng, suite):
        model, attack = crafted
        images, labels = cifar_like.sample_batch(4, rng)
        expanded, expanded_labels = OasisDefense(suite).expand_batch(images, labels)
        grads, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), expanded, expanded_labels
        )
        result = attack.reconstruct(grads)
        assert average_attack_psnr(images, result.images) < 60.0
