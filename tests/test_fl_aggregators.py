"""Aggregators: exactness on hand-computed updates, robustness, masking."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.fl import (
    Aggregator,
    CoordinateMedianAggregator,
    FedAvgAggregator,
    FixedPointCodec,
    MaskedSumAggregator,
    OneShotRecoveryAggregator,
    SecAggAggregator,
    TrimmedMeanAggregator,
    average_gradients,
    flatten_updates,
    make_aggregator,
    unflatten_vector,
)

ALL_NAMES = [
    "fedavg", "median", "trimmed_mean", "masked_sum", "secagg", "secagg_oneshot",
]


def hand_updates():
    return [
        {"w": np.array([1.0, 3.0]), "b": np.array([[2.0]])},
        {"w": np.array([3.0, 5.0]), "b": np.array([[4.0]])},
        {"w": np.array([5.0, 7.0]), "b": np.array([[6.0]])},
    ]


class TestFlattening:
    def test_round_trip(self):
        updates = hand_updates()
        matrix, spec = flatten_updates(updates)
        assert matrix.shape == (3, 3)
        restored = unflatten_vector(matrix[1], spec)
        for name in updates[1]:
            np.testing.assert_array_equal(restored[name], updates[1][name])

    def test_rows_are_clients(self):
        matrix, _ = flatten_updates(hand_updates())
        np.testing.assert_array_equal(matrix[0], [1.0, 3.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            flatten_updates([])

    def test_mismatched_keys_rejected(self):
        with pytest.raises(KeyError):
            flatten_updates([{"w": np.ones(2)}, {"v": np.ones(2)}])


class TestFedAvg:
    def test_exact_uniform_mean(self):
        out = FedAvgAggregator().aggregate(hand_updates())
        np.testing.assert_allclose(out["w"], [3.0, 5.0])
        np.testing.assert_allclose(out["b"], [[4.0]])

    def test_exact_weighted_mean(self):
        out = FedAvgAggregator().aggregate(hand_updates(), weights=[1, 1, 2])
        # (1*1 + 1*3 + 2*5) / 4 = 3.5 ; (1*3 + 1*5 + 2*7) / 4 = 5.5
        np.testing.assert_allclose(out["w"], [3.5, 5.5])
        np.testing.assert_allclose(out["b"], [[4.5]])

    def test_matches_reference_average_gradients(self):
        rng = np.random.default_rng(7)
        updates = [
            {"w": rng.standard_normal((3, 2)), "b": rng.standard_normal(4)}
            for _ in range(9)
        ]
        fast = FedAvgAggregator().aggregate(updates)
        reference = average_gradients(updates)
        for name in reference:
            np.testing.assert_allclose(fast[name], reference[name], atol=1e-12)

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            FedAvgAggregator().aggregate(hand_updates(), weights=[1.0])
        with pytest.raises(ValueError):
            FedAvgAggregator().aggregate(hand_updates(), weights=[0.0, 0.0, 0.0])
        with pytest.raises(ValueError):
            FedAvgAggregator().aggregate(hand_updates(), weights=[1.0, -1.0, 1.0])


class TestCoordinateMedian:
    def test_exact_on_hand_updates(self):
        out = CoordinateMedianAggregator().aggregate(hand_updates())
        np.testing.assert_array_equal(out["w"], [3.0, 5.0])
        np.testing.assert_array_equal(out["b"], [[4.0]])

    def test_tolerates_crafted_outlier(self):
        updates = hand_updates()
        updates[2] = {"w": np.array([1e9, -1e9]), "b": np.array([[1e9]])}
        out = CoordinateMedianAggregator().aggregate(updates)
        # The median lands on an honest client's coordinate, unmoved by the
        # attacker's arbitrarily large values.
        np.testing.assert_array_equal(out["w"], [3.0, 3.0])
        np.testing.assert_array_equal(out["b"], [[4.0]])


class TestTrimmedMean:
    def test_exact_keeps_middle(self):
        updates = [
            {"w": np.array([0.0])},
            {"w": np.array([2.0])},
            {"w": np.array([4.0])},
            {"w": np.array([100.0])},
        ]
        out = TrimmedMeanAggregator(trim_ratio=0.25).aggregate(updates)
        np.testing.assert_array_equal(out["w"], [3.0])  # mean of {2, 4}

    def test_tolerates_crafted_outlier(self):
        honest = [{"w": np.full(3, float(v))} for v in (1.0, 2.0, 3.0)]
        crafted = {"w": np.full(3, 1e12)}
        out = TrimmedMeanAggregator(trim_ratio=0.25).aggregate(honest + [crafted])
        np.testing.assert_array_equal(out["w"], np.full(3, 2.5))  # mean of {2, 3}

    def test_zero_trim_is_mean(self):
        out = TrimmedMeanAggregator(trim_ratio=0.0).aggregate(hand_updates())
        np.testing.assert_allclose(out["w"], [3.0, 5.0])

    def test_trim_never_empties(self):
        # Ratio large enough to trim everything is clamped to leave the median.
        out = TrimmedMeanAggregator(trim_ratio=0.49).aggregate(hand_updates())
        np.testing.assert_allclose(out["w"], [3.0, 5.0])

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            TrimmedMeanAggregator(trim_ratio=0.5)


class TestMaskedSum:
    def grid_updates(self, count=4, dim=6, seed=0):
        """Updates on the 2^-16 fixed-point grid: quantization is lossless."""
        rng = np.random.default_rng(seed)
        return [
            {"w": rng.integers(-4000, 4000, dim) / 1024.0} for _ in range(count)
        ]

    def test_recovers_plain_sum_bit_for_bit(self):
        updates = self.grid_updates()
        agg = MaskedSumAggregator(fractional_bits=16, seed=11)
        matrix, _ = flatten_updates(updates)
        recovered = agg.unmask_sum(agg.mask_updates(matrix))
        # Grid-aligned values make the fixed-point sum equal the exact float
        # sum, so mask cancellation must reproduce it to the last bit.
        np.testing.assert_array_equal(recovered, agg.exact_sum(matrix))
        np.testing.assert_array_equal(recovered, matrix.sum(axis=0))

    def test_aggregate_equals_plain_mean_bit_for_bit(self):
        updates = self.grid_updates(count=4)  # power of two: exact division
        out = MaskedSumAggregator(fractional_bits=16, seed=5).aggregate(updates)
        matrix, _ = flatten_updates(updates)
        np.testing.assert_array_equal(out["w"], matrix.sum(axis=0) / 4.0)

    def test_masked_uploads_hide_individual_updates(self):
        updates = self.grid_updates()
        agg = MaskedSumAggregator(seed=1)
        matrix, _ = flatten_updates(updates)
        masked = agg.mask_updates(matrix)
        plain = agg.quantize(matrix)
        # No client's masked upload may equal its plain quantized update.
        for row in range(len(matrix)):
            assert not np.array_equal(masked[row], plain[row])

    def test_masks_are_fresh_each_round(self):
        updates = self.grid_updates()
        agg = MaskedSumAggregator(seed=1)
        matrix, _ = flatten_updates(updates)
        first = agg.mask_updates(matrix, round_index=0)
        second = agg.mask_updates(matrix, round_index=1)
        assert not np.array_equal(first, second)
        # ... but both protocol executions recover the identical sum.
        np.testing.assert_array_equal(agg.unmask_sum(first), agg.unmask_sum(second))

    def test_mask_stream_is_replay_safe(self):
        # Masks are keyed by the explicit round index, not by how many
        # rounds the instance already served: replaying round 3 on a fresh
        # instance (a resumed run) draws the identical mask stream.
        updates = self.grid_updates()
        matrix, _ = flatten_updates(updates)
        veteran = MaskedSumAggregator(seed=1)
        for earlier_round in range(3):
            veteran.mask_updates(matrix, round_index=earlier_round)
        resumed = MaskedSumAggregator(seed=1)
        np.testing.assert_array_equal(
            veteran.mask_updates(matrix, round_index=3),
            resumed.mask_updates(matrix, round_index=3),
        )

    def test_survivor_subset_still_cancels(self):
        # Dropout: masks are generated among survivors only, so the sum over
        # any subset of clients is recovered exactly as well.
        updates = self.grid_updates(count=6)
        survivors = [updates[i] for i in (0, 2, 5)]
        agg = MaskedSumAggregator(seed=9)
        matrix, _ = flatten_updates(survivors)
        np.testing.assert_array_equal(
            agg.unmask_sum(agg.mask_updates(matrix)), matrix.sum(axis=0)
        )

    def test_single_client_passthrough(self):
        updates = self.grid_updates(count=1)
        out = MaskedSumAggregator(seed=2).aggregate(updates)
        np.testing.assert_array_equal(out["w"], updates[0]["w"])

    def test_overflowing_update_rejected(self):
        # A byzantine client whose values would wrap the fixed-point ring
        # must raise, not silently corrupt the aggregate.
        updates = self.grid_updates(count=2)
        updates[1]["w"] = np.full_like(updates[1]["w"], 1e15)
        with pytest.raises(ValueError, match="fixed-point range"):
            MaskedSumAggregator(fractional_bits=16).aggregate(updates)

    def test_close_to_float_mean_off_grid(self):
        rng = np.random.default_rng(3)
        updates = [{"w": rng.standard_normal(8)} for _ in range(5)]
        out = MaskedSumAggregator(fractional_bits=16).aggregate(updates)
        plain = np.mean([u["w"] for u in updates], axis=0)
        np.testing.assert_allclose(out["w"], plain, atol=2e-5)


class TestRegistry:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_resolves_names(self, name):
        assert make_aggregator(name).name in (name, "fedavg", "median")

    def test_aliases(self):
        assert isinstance(make_aggregator("mean"), FedAvgAggregator)
        assert isinstance(make_aggregator("coordinate_median"), CoordinateMedianAggregator)
        assert isinstance(make_aggregator("secure_agg"), MaskedSumAggregator)

    def test_accepts_class_and_instance(self):
        assert isinstance(make_aggregator(TrimmedMeanAggregator, trim_ratio=0.2),
                          TrimmedMeanAggregator)
        instance = FedAvgAggregator()
        assert make_aggregator(instance) is instance

    def test_instance_with_kwargs_rejected(self):
        with pytest.raises(ValueError):
            make_aggregator(FedAvgAggregator(), trim_ratio=0.2)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_aggregator("krum")

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Aggregator().aggregate(hand_updates())

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_every_rule_preserves_shapes(self, name):
        rng = np.random.default_rng(4)
        updates = [
            {"w": rng.standard_normal((2, 3)), "b": rng.standard_normal(5)}
            for _ in range(6)
        ]
        out = make_aggregator(name).aggregate(updates)
        assert out["w"].shape == (2, 3)
        assert out["b"].shape == (5,)
        assert all(np.isfinite(v).all() for v in out.values())


class TestFixedPointCodec:
    """Boundary behaviour of the shared quantization codec.

    The masked-sum docstring promises exactness while the quantized sum
    stays within int64 (``K * max|q| < 2**63``); the codec guard must
    admit everything strictly inside that bound and reject anything at
    or beyond it (where modular wraparound would silently corrupt the
    recovered aggregate).
    """

    def test_admits_values_up_to_the_promised_bound(self):
        # K * max|q| = 2 * 2**61 = 2**62 < 2**63: inside the promise.
        # (The old 2**62 guard wrongly rejected this — regression.)
        codec = FixedPointCodec(fractional_bits=0)
        matrix = np.array([[2.0 ** 61], [-(2.0 ** 61)]])
        total = codec.exact_sum(matrix)
        np.testing.assert_array_equal(total, [0.0])

    def test_rejects_sum_at_the_limit(self):
        # K * max|q| = 2 * 2**62 = 2**63: wraparound possible, must raise.
        codec = FixedPointCodec(fractional_bits=0)
        matrix = np.array([[2.0 ** 62], [2.0 ** 62]])
        with pytest.raises(ValueError, match="fixed-point range"):
            codec.quantize(matrix)

    def test_rejects_single_value_over_the_limit(self):
        codec = FixedPointCodec(fractional_bits=0)
        with pytest.raises(ValueError, match="fixed-point range"):
            codec.quantize(np.array([[2.0 ** 63]]))

    def test_guard_checks_rounded_magnitudes(self):
        # The guard must bound what is actually summed: the *rounded*
        # fixed-point values, not the raw floats.  2**46 - 0.25 rounds up
        # to 2**46, so at count 2**17 the worst-case sum is exactly 2**63
        # (reject) even though the raw magnitude sum is 2**15 short of it.
        codec = FixedPointCodec(fractional_bits=0)
        value = np.array([[2.0 ** 46 - 0.25]])
        with pytest.raises(ValueError, match="fixed-point range"):
            codec.quantize(value, count=2 ** 17)
        # One fewer summand puts the worst case strictly inside int64.
        codec.quantize(value, count=2 ** 17 - 1)

    def test_wraparound_regression(self):
        # Just inside the bound the ring sum must equal the true integer
        # sum even though intermediate totals (3 * 2**61) far exceed what
        # a narrower guard would allow; an unsigned-view bug would show
        # up as a sign flip on the negative column.
        codec = FixedPointCodec(fractional_bits=0)
        big = 2.0 ** 61
        matrix = np.array([[big, -big], [big, -big], [big, big]])
        total = codec.exact_sum(matrix)
        np.testing.assert_array_equal(total, [3 * big, -big])
        # The guard is per-summand-count: the same values sum fine over 3
        # rows but a 4th worst-case summand could reach 2**63.
        with pytest.raises(ValueError, match="fixed-point range"):
            codec.quantize(matrix, count=4)

    def test_masked_sum_exposes_codec(self):
        agg = MaskedSumAggregator(fractional_bits=8)
        assert isinstance(agg.codec, FixedPointCodec)
        assert agg.codec.scale == 2.0 ** 8
        with pytest.raises(ValueError):
            FixedPointCodec(fractional_bits=-1)


class TestWeightHandling:
    """Unweighted rules must announce, once, that weights are discarded."""

    @pytest.mark.parametrize("name", ["masked_sum", "median", "trimmed_mean"])
    def test_unweighted_rule_warns_once(self, name):
        agg = make_aggregator(name)
        updates = hand_updates()
        with pytest.warns(RuntimeWarning, match="cannot honour"):
            agg.aggregate(updates, weights=[1, 1, 2])
        # Second call on the same instance stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            agg.aggregate(updates, weights=[1, 1, 2])

    def test_fedavg_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            FedAvgAggregator().aggregate(hand_updates(), weights=[1, 1, 2])

    def test_no_weights_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            CoordinateMedianAggregator().aggregate(hand_updates())

    def test_effective_weighting_labels(self):
        assert FedAvgAggregator().effective_weighting([1, 2]) == "weighted"
        assert FedAvgAggregator().effective_weighting(None) == "uniform"
        assert CoordinateMedianAggregator().effective_weighting([1, 2]) == "uniform"


class TestProtocolRegistryEntries:
    def test_lazy_names_resolve(self):
        assert isinstance(make_aggregator("secagg"), SecAggAggregator)
        assert isinstance(make_aggregator("secagg_bonawitz"), SecAggAggregator)
        assert isinstance(make_aggregator("secagg_oneshot"), OneShotRecoveryAggregator)
        assert isinstance(make_aggregator("lightsecagg"), OneShotRecoveryAggregator)

    def test_lazy_names_accept_kwargs(self):
        agg = make_aggregator("secagg", fractional_bits=8, threshold=3)
        assert agg.fractional_bits == 8
        assert agg.threshold_for(10) == 3
        assert make_aggregator("secagg").threshold_for(10) == 6

    def test_protocol_rules_require_commitment(self):
        assert make_aggregator("secagg").requires_commitment
        assert make_aggregator("secagg_oneshot").requires_commitment
        assert not make_aggregator("masked_sum").requires_commitment
