"""DP-SGD defense: per-sample clipping, noise calibration, and the
clipping-invariance of gradient inversion (why clipping alone fails)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import ImprintedModel, RTFAttack
from repro.defense import DPSGDDefense, NoDefense
from repro.fl import clip_gradient_dict, compute_defended_update
from repro.metrics import average_attack_psnr
from repro.nn import CrossEntropyLoss


@pytest.fixture
def crafted(cifar_like):
    model = ImprintedModel(cifar_like.image_shape, 150, cifar_like.num_classes,
                           rng=np.random.default_rng(7))
    attack = RTFAttack(150)
    attack.calibrate_from_public_data(cifar_like.images[:100])
    attack.craft(model)
    return model, attack


class TestClipGradientDict:
    def test_large_gradients_scaled_down(self, rng):
        grads = {"w": rng.standard_normal(100) * 10.0}
        clipped = clip_gradient_dict(grads, 1.0)
        norm = np.sqrt(np.sum(clipped["w"] ** 2))
        assert norm == pytest.approx(1.0)

    def test_small_gradients_untouched(self, rng):
        grads = {"w": np.full(4, 1e-4)}
        clipped = clip_gradient_dict(grads, 1.0)
        np.testing.assert_array_equal(clipped["w"], grads["w"])

    def test_clipping_is_uniform_across_tensors(self, rng):
        grads = {"a": rng.standard_normal(10) * 5, "b": rng.standard_normal(10) * 5}
        clipped = clip_gradient_dict(grads, 1.0)
        ratio_a = clipped["a"] / grads["a"]
        ratio_b = clipped["b"] / grads["b"]
        np.testing.assert_allclose(ratio_a, ratio_a[0])
        np.testing.assert_allclose(ratio_b, ratio_a[0])


class TestDPSGDDefense:
    def test_validation(self):
        with pytest.raises(ValueError):
            DPSGDDefense(clip_norm=0.0)
        with pytest.raises(ValueError):
            DPSGDDefense(noise_multiplier=-0.1)

    def test_per_sample_clip_flag_set(self):
        defense = DPSGDDefense(clip_norm=0.7)
        assert defense.per_sample_clip == 0.7

    def test_zero_noise_finalize_is_identity(self, rng):
        defense = DPSGDDefense(clip_norm=1.0, noise_multiplier=0.0)
        grads = {"w": np.ones(3)}
        out = defense.finalize_update(grads, 8, rng)
        np.testing.assert_array_equal(out["w"], grads["w"])

    def test_noise_scales_inversely_with_batch(self, rng):
        defense = DPSGDDefense(clip_norm=1.0, noise_multiplier=8.0)
        zeros = {"w": np.zeros(20000)}
        small_batch = defense.finalize_update(dict(zeros), 2, np.random.default_rng(0))
        large_batch = defense.finalize_update(dict(zeros), 32, np.random.default_rng(0))
        assert np.std(small_batch["w"]) == pytest.approx(
            16 * np.std(large_batch["w"]), rel=0.05
        )

    def test_defended_update_bounds_sensitivity(self, cifar_like, rng):
        # The mean of per-sample-clipped gradients has sensitivity C/B:
        # removing one sample changes the update by at most 2C/B.
        defense = DPSGDDefense(clip_norm=0.5, noise_multiplier=0.0)
        model = ImprintedModel(cifar_like.image_shape, 50, cifar_like.num_classes,
                               rng=np.random.default_rng(3))
        images, labels = cifar_like.sample_batch(4, rng)
        grads, _, n = compute_defended_update(
            model, CrossEntropyLoss(), images, labels, defense,
            np.random.default_rng(0),
        )
        assert n == 4
        total = np.sqrt(sum(np.sum(g ** 2) for g in grads.values()))
        assert total <= 0.5 + 1e-9  # mean of vectors each bounded by C


class TestClippingInvariance:
    def test_clipping_alone_does_not_stop_inversion(self, crafted, cifar_like, rng):
        """Eq. 6 divides two gradients of the same sample, so per-sample
        rescaling cancels: clipping-only DP-SGD leaves RTF at full power."""
        model, attack = crafted
        images, labels = cifar_like.sample_batch(4, rng)
        defense = DPSGDDefense(clip_norm=0.01, noise_multiplier=0.0)
        grads, _, _ = compute_defended_update(
            model, CrossEntropyLoss(), images, labels, defense,
            np.random.default_rng(0),
        )
        result = attack.reconstruct(grads)
        assert average_attack_psnr(images, result.images) > 120.0

    def test_noise_is_what_stops_inversion(self, crafted, cifar_like, rng):
        model, attack = crafted
        images, labels = cifar_like.sample_batch(4, rng)
        defense = DPSGDDefense(clip_norm=0.01, noise_multiplier=1.0)
        grads, _, _ = compute_defended_update(
            model, CrossEntropyLoss(), images, labels, defense,
            np.random.default_rng(0),
        )
        result = attack.reconstruct(grads)
        assert average_attack_psnr(images, result.images) < 60.0

    def test_noiseless_dpsgd_matches_plain_update_direction(self, cifar_like, rng):
        # Clipped-mean update stays positively correlated with the plain
        # batch gradient (it is a reweighted sum of per-sample gradients).
        model = ImprintedModel(cifar_like.image_shape, 50, cifar_like.num_classes,
                               rng=np.random.default_rng(3))
        images, labels = cifar_like.sample_batch(4, rng)
        plain, _, _ = compute_defended_update(
            model, CrossEntropyLoss(), images, labels, NoDefense(),
            np.random.default_rng(0),
        )
        defended, _, _ = compute_defended_update(
            model, CrossEntropyLoss(), images, labels,
            DPSGDDefense(clip_norm=0.5, noise_multiplier=0.0),
            np.random.default_rng(0),
        )
        flat_plain = np.concatenate([v.ravel() for v in plain.values()])
        flat_def = np.concatenate([v.ravel() for v in defended.values()])
        cosine = flat_plain @ flat_def / (
            np.linalg.norm(flat_plain) * np.linalg.norm(flat_def)
        )
        assert cosine > 0.5
