"""The one-call reproduction scorecard: every headline shape must hold."""

from __future__ import annotations

import pytest

from repro.experiments import build_paper_summary, comparison_table, summary_holds


@pytest.fixture(scope="module")
def summary(cifar_like):
    return build_paper_summary(cifar_like, batch_size=4, num_neurons=150, seed=3)


class TestPaperSummary:
    def test_every_headline_shape_holds(self, summary):
        assert summary_holds(summary), comparison_table(summary)

    def test_covers_headline_experiments(self, summary):
        experiments = {row.experiment for row in summary}
        assert {"Fig 5", "Fig 6", "Fig 13", "Fig 14"} <= experiments

    def test_rows_have_measurements(self, summary):
        assert all(isinstance(row.measured, float) for row in summary)

    def test_table_renders_all_rows(self, summary):
        table = comparison_table(summary)
        assert table.count("\n") >= len(summary) + 1

    def test_summary_holds_detects_failure(self, summary):
        broken = list(summary)
        broken[0] = type(broken[0])(
            experiment="x", quantity="y", paper_value="z",
            measured=0.0, agrees=False,
        )
        assert not summary_holds(broken)
