"""Protocol-level scenario tests: sampling, dropout, stragglers, non-IID.

Uses stub clients whose gradient is a known function of their id, so the
round aggregate can be recomputed exactly from the participation record.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_synthetic_dataset
from repro.fl import (
    FederatedSimulation,
    FederationConfig,
    GradientUpdate,
    Server,
    dirichlet_partition_indices,
    partition_dataset_dirichlet,
    rebalance_min_per_client,
)
from repro.nn import MLP
from repro.nn.module import Module

DIM = 4


class StubClient:
    """Deterministic fake client: every gradient entry equals its id."""

    def __init__(self, client_id: int) -> None:
        self.client_id = client_id

    def local_update(self, broadcast) -> GradientUpdate:
        return GradientUpdate(
            client_id=self.client_id,
            round_index=broadcast.round_index,
            num_examples=1,
            gradients={"w": np.full(DIM, float(self.client_id))},
            loss=float(self.client_id),
        )


def make_stub_server(num_clients, **kwargs):
    return Server(Module(), [StubClient(i) for i in range(num_clients)], **kwargs)


SCENARIOS = [(8, 0.0), (32, 0.1), (32, 0.3)]


class TestDropoutScenarios:
    @pytest.mark.parametrize("num_clients,dropout_rate", SCENARIOS)
    def test_round_completes(self, num_clients, dropout_rate):
        server = make_stub_server(num_clients, dropout_rate=dropout_rate, seed=42)
        record = server.run_round()
        assert server.round_index == 1
        assert server.history == [record]
        assert record.round_index == 0

    @pytest.mark.parametrize("num_clients,dropout_rate", SCENARIOS)
    def test_aggregate_is_mean_over_survivors_only(self, num_clients, dropout_rate):
        server = make_stub_server(num_clients, dropout_rate=dropout_rate, seed=42)
        record = server.run_round()
        survivors = record.participant_ids
        assert survivors, "seeded scenario should keep at least one survivor"
        expected = np.full(DIM, np.mean(survivors))
        np.testing.assert_allclose(server.last_aggregate["w"], expected, atol=1e-12)
        # Dropped clients must not leak into the aggregate: recompute with
        # every selected client and check it differs whenever any dropped.
        if record.dropped_ids:
            with_everyone = np.mean(record.selected_ids)
            assert not np.isclose(with_everyone, np.mean(survivors))

    @pytest.mark.parametrize("num_clients,dropout_rate", SCENARIOS)
    def test_round_record_reports_participation(self, num_clients, dropout_rate):
        server = make_stub_server(num_clients, dropout_rate=dropout_rate, seed=42)
        record = server.run_round()
        assert sorted(record.selected_ids) == list(range(num_clients))
        assert sorted(record.participant_ids + record.dropped_ids) == sorted(
            record.selected_ids
        )
        assert set(record.participant_ids).isdisjoint(record.dropped_ids)
        assert not record.straggler_ids and not record.stale_ids
        assert record.num_selected == num_clients
        assert record.participation_rate == pytest.approx(
            len(record.participant_ids) / num_clients
        )
        if dropout_rate == 0.0:
            assert not record.dropped_ids
            assert record.participation_rate == 1.0
        else:
            # Seed 42 was chosen so each lossy scenario actually drops someone.
            assert record.dropped_ids
        assert record.mean_loss == pytest.approx(np.mean(record.participant_ids))

    def test_dropout_rates_respected_over_many_rounds(self):
        server = make_stub_server(32, dropout_rate=0.3, seed=0)
        records = server.run(50)
        rates = [r.participation_rate for r in records]
        assert 0.6 < np.mean(rates) < 0.8  # ~= 1 - dropout_rate

    def test_full_dropout_round_still_completes(self):
        server = make_stub_server(8, dropout_rate=1.0, seed=0)
        record = server.run_round()
        assert record.participant_ids == []
        assert sorted(record.dropped_ids) == list(range(8))
        assert np.isnan(record.mean_loss)
        assert server.last_aggregate is None
        assert server.round_index == 1

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            make_stub_server(4, dropout_rate=1.5)
        with pytest.raises(ValueError):
            make_stub_server(4, straggler_rate=-0.1)


class TestAllAggregatorsUnderDropout:
    @pytest.mark.parametrize(
        "name", ["fedavg", "median", "trimmed_mean", "masked_sum"]
    )
    def test_round_survives_30pct_dropout(self, name):
        server = make_stub_server(
            32, dropout_rate=0.3, aggregator=name, seed=42
        )
        record = server.run_round()
        survivors = record.participant_ids
        assert survivors and record.aggregator in (name, "fedavg", "median")
        aggregate = server.last_aggregate["w"]
        assert np.all(np.isfinite(aggregate))
        # Every rule must land inside the survivors' convex hull.
        assert np.all(aggregate >= min(survivors) - 1e-6)
        assert np.all(aggregate <= max(survivors) + 1e-6)

    def test_fedavg_and_masked_sum_agree_under_dropout(self):
        fedavg = make_stub_server(32, dropout_rate=0.3, aggregator="fedavg", seed=42)
        masked = make_stub_server(32, dropout_rate=0.3, aggregator="masked_sum", seed=42)
        a = fedavg.run_round()
        b = masked.run_round()
        assert a.participant_ids == b.participant_ids  # same RNG stream
        np.testing.assert_allclose(
            fedavg.last_aggregate["w"], masked.last_aggregate["w"], atol=1e-4
        )


class TestSamplingAndStragglers:
    def test_sampling_composes_with_dropout(self):
        server = make_stub_server(
            32, clients_per_round=16, dropout_rate=0.3, seed=1
        )
        record = server.run_round()
        assert record.num_selected == 16
        assert len(record.participant_ids) + len(record.dropped_ids) == 16

    def test_stragglers_excluded_by_default(self):
        server = make_stub_server(16, straggler_rate=0.5, seed=3)
        record = server.run_round()
        assert record.straggler_ids, "seeded scenario should produce stragglers"
        assert set(record.participant_ids).isdisjoint(record.straggler_ids)
        expected = np.full(DIM, np.mean(record.participant_ids))
        np.testing.assert_allclose(server.last_aggregate["w"], expected, atol=1e-12)

    def test_stale_straggler_updates_fold_into_next_round(self):
        server = make_stub_server(16, straggler_rate=0.5, accept_stale=True, seed=3)
        first = server.run_round()
        assert first.straggler_ids and not first.stale_ids
        second = server.run_round()
        assert sorted(second.stale_ids) == sorted(first.straggler_ids)
        # The stale arrivals entered round two's aggregate alongside fresh ones.
        expected = np.full(DIM, np.mean(second.participant_ids))
        np.testing.assert_allclose(server.last_aggregate["w"], expected, atol=1e-12)
        assert set(second.stale_ids) <= set(second.participant_ids)
        # mean_loss covers everything aggregated, stale arrivals included.
        assert second.mean_loss == pytest.approx(np.mean(second.participant_ids))

    def test_straggler_inspection_deferred_to_aggregation_round(self):
        # Regression: late updates used to be inspected in the round they
        # *arrived*, attributing their attack events to a record whose
        # aggregate (and participant_ids) they were not part of.  They
        # must be inspected in the round they are aggregated as stale.
        from repro.fl import DishonestServer

        class RecordingAttack:
            name = "recording"

            def craft(self, model):
                pass

            def reconstruct(self, gradients):
                return []

        server = DishonestServer(
            Module(),
            [StubClient(i) for i in range(16)],
            RecordingAttack(),
            straggler_rate=0.5,
            accept_stale=True,
            seed=3,
        )
        first = server.run_round()
        assert first.straggler_ids, "seeded scenario should produce stragglers"
        first_event_ids = sorted(e["client_id"] for e in first.attack_events)
        assert first_event_ids == sorted(first.participant_ids)
        assert set(first_event_ids).isdisjoint(first.straggler_ids)
        second = server.run_round()
        # Round 1's stragglers fold in as stale now — and only now are
        # their updates inspected, in the record they actually joined.
        second_event_ids = sorted(e["client_id"] for e in second.attack_events)
        assert second_event_ids == sorted(second.participant_ids)
        assert set(first.straggler_ids) <= set(second_event_ids)

    def test_discarded_stragglers_never_inspected(self):
        from repro.fl import DishonestServer

        class RecordingAttack:
            name = "recording"

            def craft(self, model):
                pass

            def reconstruct(self, gradients):
                return []

        server = DishonestServer(
            Module(),
            [StubClient(i) for i in range(16)],
            RecordingAttack(),
            straggler_rate=0.5,
            accept_stale=False,
            seed=3,
        )
        record = server.run_round()
        assert record.straggler_ids
        # Late updates never enter any aggregate, so the attack must not
        # receive them in any round.
        inspected = {e["client_id"] for e in record.attack_events}
        assert inspected.isdisjoint(record.straggler_ids)
        second = server.run_round()
        inspected_second = {e["client_id"] for e in second.attack_events}
        assert inspected_second == set(second.participant_ids)

    def test_weight_by_examples(self):
        class Weighted(StubClient):
            """Stub whose num_examples is 1 for even ids, 3 for odd ids."""

            def local_update(self, broadcast):
                update = super().local_update(broadcast)
                update.num_examples = 1 if self.client_id % 2 == 0 else 3
                return update

        server = Server(
            Module(), [Weighted(i) for i in range(4)], weight_by_examples=True
        )
        record = server.run_round()
        # ids 0..3 with weights [1, 3, 1, 3] -> (0 + 3 + 2 + 9) / 8
        np.testing.assert_allclose(
            server.last_aggregate["w"], np.full(DIM, 14.0 / 8.0), atol=1e-12
        )
        assert record.weighting == "weighted"

    def test_unweighted_rule_records_uniform_weighting(self):
        # weight_by_examples through a rule that cannot honour weights
        # must warn and record what actually happened: uniform.
        server = make_stub_server(
            4, aggregator="median", weight_by_examples=True
        )
        with pytest.warns(RuntimeWarning, match="cannot honour"):
            record = server.run_round()
        assert record.weighting == "uniform"
        assert record.aggregator == "median"


class TestNonIIDFederation:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_synthetic_dataset(4, 16, image_size=8, seed=21, name="noniid")

    def test_dirichlet_shards_cover_dataset(self, dataset):
        shards = partition_dataset_dirichlet(dataset, 6, alpha=0.2, seed=0,
                                             min_per_client=1)
        assert sum(len(s) for s in shards) == len(dataset)
        assert all(len(s) >= 1 for s in shards)

    def test_low_alpha_skews_labels(self, dataset):
        shards = partition_dataset_dirichlet(dataset, 4, alpha=0.05, seed=2,
                                             min_per_client=1)
        skewed = [s for s in shards if len(s) >= 4]
        assert skewed, "alpha=0.05 should concentrate classes onto few clients"
        # At least one well-populated shard should be dominated by one class.
        dominance = max(
            np.bincount(s.labels, minlength=4).max() / len(s) for s in skewed
        )
        assert dominance > 0.5

    def test_rebalance_pins_exact_assignment(self, dataset):
        # Regression pin for the vectorized min_per_client rebalancing:
        # alpha=0.1 at seed 7 starves shard 3 entirely (sizes
        # [7, 29, 19, 0, 1, 8]) and the deterministic donor pass must
        # reproduce this exact reassignment forever.  Donors drain
        # richest-first (shard 1), giving away their most-abundant
        # labels first; no RNG is consumed.
        labels = dataset.labels
        raw = dirichlet_partition_indices(
            labels, 6, 0.1, np.random.default_rng(7)
        )
        assert [len(a) for a in raw] == [7, 29, 19, 0, 1, 8]
        balanced = rebalance_min_per_client(raw, labels, 4)
        expected = [
            [0, 4, 6, 26, 28, 30, 33],
            [11, 13, 14, 19, 21, 23, 27, 32, 35, 36, 37, 39, 41, 42, 46,
             47, 49, 53, 54, 59, 60, 62],
            [12, 15, 16, 20, 22, 29, 34, 38, 43, 44, 48, 50, 52, 55, 56,
             57, 58, 61, 63],
            [1, 2, 5, 7],
            [8, 9, 10, 18],
            [3, 17, 24, 25, 31, 40, 45, 51],
        ]
        assert [sorted(a.tolist()) for a in balanced] == expected

    def test_rebalance_preserves_coverage_and_consumes_no_rng(self, dataset):
        labels = dataset.labels
        rng = np.random.default_rng(7)
        raw = dirichlet_partition_indices(labels, 6, 0.1, rng)
        state_before = rng.bit_generator.state
        balanced = rebalance_min_per_client(raw, labels, 4)
        assert rng.bit_generator.state == state_before
        assert all(len(a) >= 4 for a in balanced)
        merged = np.sort(np.concatenate(balanced))
        np.testing.assert_array_equal(merged, np.arange(len(labels)))

    def test_rebalance_rejects_impossible_minimum(self, dataset):
        raw = dirichlet_partition_indices(
            dataset.labels, 6, 0.5, np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="not enough samples"):
            rebalance_min_per_client(raw, dataset.labels, len(dataset))

    def test_validates_inputs(self, dataset):
        with pytest.raises(ValueError):
            partition_dataset_dirichlet(dataset, 4, alpha=0.0)
        with pytest.raises(ValueError):
            partition_dataset_dirichlet(dataset, 0, alpha=1.0)
        with pytest.raises(ValueError):
            partition_dataset_dirichlet(
                dataset, len(dataset) + 1, alpha=1.0, min_per_client=1
            )

    def test_full_scenario_simulation(self, dataset):
        config = FederationConfig(
            num_clients=6,
            clients_per_round=4,
            batch_size=2,
            partition="dirichlet",
            dirichlet_alpha=0.3,
            dropout_rate=0.2,
            aggregator="trimmed_mean",
            seed=4,
        )
        sim = FederatedSimulation(
            dataset,
            lambda: MLP([dataset.flat_dim, 8, dataset.num_classes],
                        rng=np.random.default_rng(0)),
            config,
        )
        records = sim.run(4)
        assert len(records) == 4
        for record in records:
            assert record.num_selected == 4
            assert record.aggregator == "trimmed_mean"
        assert 0.0 <= sim.evaluate(dataset) <= 1.0

    def test_unknown_partition_rejected(self, dataset):
        config = FederationConfig(num_clients=2, partition="sorted")
        with pytest.raises(ValueError):
            FederatedSimulation(
                dataset,
                lambda: MLP([dataset.flat_dim, 4, dataset.num_classes],
                            rng=np.random.default_rng(0)),
                config,
            )


@pytest.mark.slow
class TestScale:
    """Scale-oriented protocol tests, excluded from tier-1 by the slow marker."""

    def test_hundred_client_federation_round(self):
        dataset = make_synthetic_dataset(4, 50, image_size=8, seed=31, name="scale")
        config = FederationConfig(
            num_clients=100,
            clients_per_round=64,
            batch_size=2,
            dropout_rate=0.1,
            seed=0,
        )
        sim = FederatedSimulation(
            dataset,
            lambda: MLP([dataset.flat_dim, 16, dataset.num_classes],
                        rng=np.random.default_rng(0)),
            config,
        )
        records = sim.run(3)
        assert all(r.num_selected == 64 for r in records)
        assert all(np.isfinite(r.mean_loss) for r in records)

    def test_stub_scale_all_aggregators(self):
        for name in ("fedavg", "median", "trimmed_mean", "masked_sum"):
            # masked_sum expands O(K^2) pairwise masks; keep K moderate.
            count = 100 if name != "masked_sum" else 48
            server = make_stub_server(count, dropout_rate=0.3,
                                      aggregator=name, seed=8)
            record = server.run_round()
            assert record.participant_ids
            assert np.all(np.isfinite(server.last_aggregate["w"]))
