"""Golden-file regression suite for the sweep engine's numeric output.

Snapshots of a fixed 50-cell grid (5 attacks x 5 defense arms x 2
scenarios) — ``SweepOutcome.to_table()`` and every per-cell result dict —
live in ``tests/golden/``.  Any change to the attack/defense hot path
(gradient algebra, PSNR matching, batch expansion, gradient defenses,
seed derivation) that shifts these numbers fails here, so silent numeric
drift can't ride in on an unrelated refactor.

When a change is *intended* to move the numbers (e.g. a new seeding
scheme), regenerate the snapshots and commit them with the change::

    PYTHONPATH=src python tests/test_sweep_golden.py

Float comparisons use a 1e-6 relative tolerance: tight enough to catch
real drift, loose enough to survive BLAS/numpy version differences across
CI hosts.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"
CELLS_PATH = GOLDEN_DIR / "sweep_cells.json"
TABLE_PATH = GOLDEN_DIR / "sweep_table.txt"

REL_TOLERANCE = 1e-6


GOLDEN_DEFENSES = ("WO", "MR", "dpsgd", "prune", "MR>dpsgd")


def golden_runner(store=None):
    """The frozen 50-cell grid the snapshots were generated from.

    The attack axis covers the whole zoo and the defense axis spans the
    registry's families — no defense, OASIS expansion, both gradient-space
    baselines, and a composed stack — so numeric drift in *any* attack's
    gradient algebra, any defense's batch/gradient hooks, or the
    fingerprint-keyed seeding of stochastic stages (DP noise) fails here.
    Changing anything in this grid invalidates the snapshots — regenerate
    them in the same commit.
    """
    from repro.data import make_synthetic_dataset
    from repro.experiments import ParticipationScenario, SweepRunner

    dataset = make_synthetic_dataset(
        4, 12, image_size=8, seed=3, name="golden"
    )
    return SweepRunner(
        dataset,
        attacks=("rtf", "cah", "linear", "qbi", "loki"),
        defenses=GOLDEN_DEFENSES,
        scenarios=(
            ParticipationScenario("full", num_clients=2),
            ParticipationScenario("sampled", num_clients=4, clients_per_round=2),
        ),
        batch_size=3,
        num_neurons=48,
        public_size=48,
        seed=0,
        store=store,
    )


@pytest.fixture(scope="module")
def outcome():
    return golden_runner().run()


def test_golden_files_exist():
    assert CELLS_PATH.is_file(), (
        f"missing {CELLS_PATH}; regenerate with "
        "`PYTHONPATH=src python tests/test_sweep_golden.py`"
    )
    assert TABLE_PATH.is_file()


def drift_from_golden(results: dict) -> list[str]:
    """Tolerance-aware comparison of cell results to the committed snapshot.

    The single definition of "golden drift", shared by the pytest suite
    and the CI ``--check`` gate: missing/extra cells, changed result
    fields, non-float mismatches, and float differences beyond
    ``REL_TOLERANCE`` (relative, with a 1e-9 absolute floor so zeros
    compare sanely).  Returns human-readable problem strings; empty means
    clean.
    """
    golden = json.loads(CELLS_PATH.read_text())["cells"]
    if sorted(results) != sorted(golden):
        return [f"grid shape drifted: {sorted(results)} != {sorted(golden)}"]
    problems: list[str] = []
    for key, expected in golden.items():
        actual = results[key]
        if sorted(actual) != sorted(expected):
            problems.append(f"result fields drifted in {key}")
            continue
        for field, value in expected.items():
            if isinstance(value, float):
                tolerance = max(REL_TOLERANCE * abs(value), 1e-9)
                if abs(actual[field] - value) > tolerance:
                    problems.append(
                        f"{key}.{field}: {actual[field]!r} != {value!r}"
                    )
            elif actual[field] != value:
                problems.append(f"{key}.{field}: {actual[field]!r} != {value!r}")
    return problems


def test_per_cell_results_match_golden(outcome):
    assert drift_from_golden(outcome.results) == [], (
        "regenerate the golden files if the change is intended"
    )


def test_table_matches_golden(outcome):
    assert outcome.to_table() == TABLE_PATH.read_text().rstrip("\n")


def test_golden_grid_still_shows_headline_ordering(outcome):
    from repro.experiments import headline_ordering_holds

    assert headline_ordering_holds(outcome)


def test_every_zoo_attack_present_in_golden_grid(outcome):
    from repro.attacks import available_attacks

    covered = {result["attack"] for result in outcome.results.values()}
    assert covered == set(available_attacks()), (
        "the golden grid must cover the whole attack zoo; extend "
        "golden_runner and regenerate when registering a new attack"
    )


def test_defense_families_present_in_golden_grid(outcome):
    # The defense axis must pin every registry family: no defense, OASIS
    # expansion, a stochastic gradient defense, a deterministic gradient
    # defense, and a composed pipeline.
    covered = {result["defense"] for result in outcome.results.values()}
    assert {"WO", "MR", "dpsgd", "prune", "MR>dpsgd"} <= covered


def test_parallel_executor_reproduces_golden_cells(tmp_path):
    # The zoo's fingerprint-keyed seeding must make a 2-worker run land on
    # exactly the frozen snapshots — not merely match a serial run.
    from repro.experiments import ParallelSweepExecutor

    store_path = tmp_path / "golden_parallel.json"
    outcome = golden_runner(store=store_path).run(ParallelSweepExecutor(2))
    assert drift_from_golden(outcome.results) == []


def regenerate() -> None:
    """Rewrite the golden snapshots from a fresh serial run."""
    result = golden_runner().run()
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    CELLS_PATH.write_text(
        json.dumps({"cells": result.results}, indent=2, sort_keys=True) + "\n"
    )
    TABLE_PATH.write_text(result.to_table() + "\n")
    print(f"wrote {CELLS_PATH}\nwrote {TABLE_PATH}")


def check() -> int:
    """Verify the committed snapshots match a fresh run, with tolerance.

    The CI regeneration-cleanliness gate: catches a grid or code change
    whose snapshots were not regenerated, using the same
    :func:`drift_from_golden` definition as the pytest suite rather than
    byte equality, which cross-host BLAS/numpy differences make too
    brittle.  Returns a process exit code.
    """
    problems = drift_from_golden(golden_runner().run().results)
    for problem in problems:
        print(f"GOLDEN DRIFT: {problem}")
    if problems:
        print(
            "regenerate intentionally-moved snapshots with "
            "`PYTHONPATH=src python tests/test_sweep_golden.py` and commit "
            "them with the change"
        )
        return 1
    print("golden snapshots clean (all cells within tolerance)")
    return 0


if __name__ == "__main__":
    import sys

    if "--check" in sys.argv[1:]:
        raise SystemExit(check())
    regenerate()
