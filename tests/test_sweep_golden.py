"""Golden-file regression suite for the sweep engine's numeric output.

Snapshots of a fixed 4-cell grid — ``SweepOutcome.to_table()`` and every
per-cell result dict — live in ``tests/golden/``.  Any change to the
attack/defense hot path (gradient algebra, PSNR matching, batch expansion,
seed derivation) that shifts these numbers fails here, so silent numeric
drift can't ride in on an unrelated refactor.

When a change is *intended* to move the numbers (e.g. a new seeding
scheme), regenerate the snapshots and commit them with the change::

    PYTHONPATH=src python tests/test_sweep_golden.py

Float comparisons use a 1e-6 relative tolerance: tight enough to catch
real drift, loose enough to survive BLAS/numpy version differences across
CI hosts.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"
CELLS_PATH = GOLDEN_DIR / "sweep_cells.json"
TABLE_PATH = GOLDEN_DIR / "sweep_table.txt"

REL_TOLERANCE = 1e-6


def golden_runner(store=None):
    """The frozen 4-cell grid the snapshots were generated from.

    Changing anything here invalidates the snapshots — regenerate them in
    the same commit.
    """
    from repro.data import make_synthetic_dataset
    from repro.experiments import ParticipationScenario, SweepRunner

    dataset = make_synthetic_dataset(
        4, 12, image_size=8, seed=3, name="golden"
    )
    return SweepRunner(
        dataset,
        attacks=("rtf",),
        defenses=("WO", "MR"),
        scenarios=(
            ParticipationScenario("full", num_clients=2),
            ParticipationScenario("sampled", num_clients=4, clients_per_round=2),
        ),
        batch_size=3,
        num_neurons=48,
        public_size=48,
        seed=0,
        store=store,
    )


@pytest.fixture(scope="module")
def outcome():
    return golden_runner().run()


def test_golden_files_exist():
    assert CELLS_PATH.is_file(), (
        f"missing {CELLS_PATH}; regenerate with "
        "`PYTHONPATH=src python tests/test_sweep_golden.py`"
    )
    assert TABLE_PATH.is_file()


def test_per_cell_results_match_golden(outcome):
    golden = json.loads(CELLS_PATH.read_text())["cells"]
    assert sorted(outcome.results) == sorted(golden), (
        "grid shape changed; regenerate the golden files if intended"
    )
    for key, expected in golden.items():
        actual = outcome.results[key]
        assert sorted(actual) == sorted(expected), f"result fields changed in {key}"
        for field, value in expected.items():
            if isinstance(value, float):
                assert actual[field] == pytest.approx(
                    value, rel=REL_TOLERANCE, abs=1e-9
                ), f"numeric drift in {key}.{field}"
            else:
                assert actual[field] == value, f"drift in {key}.{field}"


def test_table_matches_golden(outcome):
    assert outcome.to_table() == TABLE_PATH.read_text().rstrip("\n")


def test_golden_grid_still_shows_headline_ordering(outcome):
    from repro.experiments import headline_ordering_holds

    assert headline_ordering_holds(outcome)


def regenerate() -> None:
    """Rewrite the golden snapshots from a fresh serial run."""
    result = golden_runner().run()
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    CELLS_PATH.write_text(
        json.dumps({"cells": result.results}, indent=2, sort_keys=True) + "\n"
    )
    TABLE_PATH.write_text(result.to_table() + "\n")
    print(f"wrote {CELLS_PATH}\nwrote {TABLE_PATH}")


if __name__ == "__main__":
    regenerate()
