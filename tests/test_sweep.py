"""Sweep engine: grid enumeration, cell evaluation, resumable store."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data import make_synthetic_dataset
from repro.experiments import (
    DEFAULT_SCENARIOS,
    ParticipationScenario,
    SweepCell,
    SweepOutcome,
    SweepRunner,
    SweepStore,
    SweepStoreError,
    headline_ordering_holds,
    run_defense_lineup,
    run_sweep,
    scenario_from_dict,
    scenario_to_dict,
)


@pytest.fixture(scope="module")
def sweep_dataset():
    return make_synthetic_dataset(4, 12, image_size=8, seed=3, name="sweep")


def make_runner(dataset, store=None, **overrides):
    kwargs = dict(
        attacks=("rtf",),
        defenses=("WO", "MR"),
        scenarios=(ParticipationScenario("full", num_clients=2),),
        batch_size=3,
        num_neurons=48,
        public_size=48,
        seed=0,
        store=store,
    )
    kwargs.update(overrides)
    return SweepRunner(dataset, **kwargs)


class TestScenario:
    def test_lowers_to_federation_config(self):
        scenario = ParticipationScenario(
            "s", num_clients=8, clients_per_round=4, dropout_rate=0.1,
            partition="dirichlet", dirichlet_alpha=0.2,
        )
        config = scenario.to_config(batch_size=6, seed=7)
        assert config.num_clients == 8
        assert config.clients_per_round == 4
        assert config.dropout_rate == 0.1
        assert config.partition == "dirichlet"
        assert config.batch_size == 6
        assert config.seed == 7

    def test_round_trips_through_dict(self):
        for scenario in DEFAULT_SCENARIOS:
            assert scenario_from_dict(scenario_to_dict(scenario)) == scenario

    def test_duplicate_names_rejected(self, sweep_dataset):
        with pytest.raises(ValueError):
            make_runner(
                sweep_dataset,
                scenarios=(
                    ParticipationScenario("dup"),
                    ParticipationScenario("dup", num_clients=4),
                ),
            )

    def test_empty_axis_rejected(self, sweep_dataset):
        with pytest.raises(ValueError):
            make_runner(sweep_dataset, attacks=())

    def test_duplicate_axis_entries_rejected(self, sweep_dataset):
        # A duplicated entry would make one cell land in both `computed`
        # and `cached` within a single run.
        with pytest.raises(ValueError, match="duplicate attacks"):
            make_runner(sweep_dataset, attacks=("rtf", "rtf"))
        with pytest.raises(ValueError, match="duplicate defenses"):
            make_runner(sweep_dataset, defenses=("WO", "MR", "WO"))


class TestSmokeSweep:
    """Tier-1-safe: a 2-cell sweep end to end, well under the 5s budget."""

    def test_two_cell_sweep_end_to_end(self, sweep_dataset):
        outcome = make_runner(sweep_dataset).run()
        assert len(outcome.results) == 2
        assert len(outcome.computed) == 2
        assert outcome.cached == []
        for result in outcome.results.values():
            assert result["num_reconstructions"] > 0
            assert result["num_scored"] > 0

    def test_headline_ordering_no_defense_beats_mr(self, sweep_dataset):
        # The acceptance shape: (RTF, no defense) PSNR > (RTF, MR).
        outcome = make_runner(sweep_dataset).run()
        assert headline_ordering_holds(outcome)
        assert outcome.mean_psnr("rtf", "WO", "full") > 100.0
        assert outcome.mean_psnr("rtf", "MR", "full") < 60.0

    def test_cells_enumerate_deterministically(self, sweep_dataset):
        runner = make_runner(sweep_dataset)
        assert runner.cells() == [
            SweepCell("rtf", "WO", "full"),
            SweepCell("rtf", "MR", "full"),
        ]

    def test_table_renders(self, sweep_dataset):
        outcome = make_runner(sweep_dataset).run()
        table = outcome.to_table()
        assert "rtf/full" in table
        assert "WO" in table and "MR" in table


class TestStoreResume:
    def test_resume_skips_finished_cells(self, sweep_dataset, tmp_path):
        path = tmp_path / "sweep.json"
        first = make_runner(sweep_dataset, store=path).run()
        assert len(first.computed) == 2

        resumed_store = SweepStore(path)
        resumed = make_runner(sweep_dataset, store=resumed_store).run()
        assert resumed.computed == []
        assert sorted(resumed.cached) == sorted(first.results)
        assert resumed.results == first.results
        assert resumed_store.hits == 2

    def test_partial_resume_computes_only_missing(self, sweep_dataset, tmp_path):
        path = tmp_path / "sweep.json"
        first = make_runner(sweep_dataset, store=path).run()
        # Widen the grid: the old cells come from cache, the new one runs.
        wider = make_runner(
            sweep_dataset, store=path, defenses=("WO", "MR", "HFlip")
        ).run()
        assert sorted(wider.cached) == sorted(first.results)
        assert wider.computed == [SweepCell("rtf", "HFlip", "full").key]

    def test_different_config_never_served_from_cache(self, sweep_dataset, tmp_path):
        # A reused store file must not hand one configuration's PSNRs to
        # another: the store key fingerprints batch size, neuron count,
        # seed, dataset, and the scenario's parameters — not just names.
        path = tmp_path / "sweep.json"
        make_runner(sweep_dataset, store=path).run()
        rebatched = make_runner(sweep_dataset, store=path, batch_size=2).run()
        assert len(rebatched.computed) == 2 and rebatched.cached == []
        renamed_scenario = make_runner(
            sweep_dataset, store=path,
            scenarios=(ParticipationScenario("full", num_clients=4),),
        ).run()
        assert len(renamed_scenario.computed) == 2
        assert renamed_scenario.cached == []

    def test_same_name_different_dataset_not_served(self, sweep_dataset, tmp_path):
        # The fingerprint covers dataset *content*: a regenerated dataset
        # under the same name must not inherit the old dataset's cells.
        path = tmp_path / "sweep.json"
        make_runner(sweep_dataset, store=path).run()
        lookalike = make_synthetic_dataset(
            4, 12, image_size=8, seed=99, name="sweep"
        )
        rerun = make_runner(lookalike, store=path).run()
        assert len(rerun.computed) == 2 and rerun.cached == []

    def test_corrupt_store_detected_not_silently_emptied(self, tmp_path):
        # A store truncated mid-write (or otherwise damaged) must raise a
        # clear error instead of parsing as empty — silently recomputing a
        # large grid is the worse failure mode.
        path = tmp_path / "sweep.json"
        path.write_text("{not json")
        with pytest.raises(SweepStoreError, match="corrupt"):
            SweepStore(path)

    def test_torn_tail_recovered_not_fatal(self, tmp_path):
        # A log store killed mid-append leaves at most one partial final
        # line; the next open drops exactly that record (it recomputes)
        # instead of refusing the whole store.
        path = tmp_path / "sweep.json"
        store = SweepStore(path)
        store.put("cell-a", {"mean_psnr": 1.0})
        store.put("cell-b", {"mean_psnr": 2.0})
        store.close()
        intact = path.read_bytes()
        path.write_bytes(intact[:-7])  # tear the final record
        reopened = SweepStore(path)
        assert reopened.get("cell-a") == {"mean_psnr": 1.0}
        assert reopened.get("cell-b") is None
        # Appending over the torn tail leaves a clean, loadable store.
        reopened.put("cell-b", {"mean_psnr": 3.0})
        reopened.close()
        assert SweepStore(path).get("cell-b") == {"mean_psnr": 3.0}

    def test_corrupt_mid_file_detected(self, tmp_path):
        # Damage *before* intact records cannot come from this writer's
        # crashes (only the final line can tear) — refuse the store.
        path = tmp_path / "sweep.json"
        store = SweepStore(path)
        store.put("cell-a", {"mean_psnr": 1.0})
        store.put("cell-b", {"mean_psnr": 2.0})
        store.close()
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"k": broken\n'
        path.write_bytes(b"".join(lines))
        with pytest.raises(SweepStoreError, match="corrupt"):
            SweepStore(path)

    def test_foreign_json_detected(self, tmp_path):
        # Valid JSON without the {"cells": {...}} shape is a foreign file;
        # refusing protects it from being overwritten by the next put().
        path = tmp_path / "sweep.json"
        path.write_text('{"other": 1}')
        with pytest.raises(SweepStoreError, match="cells"):
            SweepStore(path)

    def test_memory_store_counts_hits_and_misses(self):
        store = SweepStore()
        assert store.get("missing") is None
        store.put("key", 3.0)
        assert store.get("key") == 3.0
        assert store.misses == 1
        assert store.hits == 1


class TestHarnessesShareStore:
    def test_run_sweep_resumes_from_store(self, sweep_dataset, tmp_path):
        store = SweepStore(tmp_path / "fig3.json")
        first = run_sweep(
            sweep_dataset, "rtf", batch_sizes=(3,), neuron_counts=(32,),
            num_trials=1, store=store,
        )
        assert store.misses == 1
        again = run_sweep(
            sweep_dataset, "rtf", batch_sizes=(3,), neuron_counts=(32,),
            num_trials=1, store=SweepStore(tmp_path / "fig3.json"),
        )
        np.testing.assert_array_equal(first.grid, again.grid)

    def test_run_defense_lineup_resumes_from_store(self, sweep_dataset, tmp_path):
        store = SweepStore(tmp_path / "fig5.json")
        first = run_defense_lineup(
            sweep_dataset, "rtf", 3, 32, ("WO", "MR"), num_trials=1,
            store=store,
        )
        resumed_store = SweepStore(tmp_path / "fig5.json")
        again = run_defense_lineup(
            sweep_dataset, "rtf", 3, 32, ("WO", "MR"), num_trials=1,
            store=resumed_store,
        )
        assert resumed_store.hits == 2
        for name in ("WO", "MR"):
            np.testing.assert_array_equal(
                first.distributions[name], again.distributions[name]
            )


class TestHarnessParallelAndFailures:
    """The per-figure harnesses ride the same executor engine."""

    def test_run_sweep_parallel_matches_serial(self, sweep_dataset, tmp_path):
        kwargs = dict(batch_sizes=(2, 3), neuron_counts=(24, 32), num_trials=1)
        serial = run_sweep(
            sweep_dataset, "rtf", store=SweepStore(tmp_path / "s.json"), **kwargs
        )
        parallel = run_sweep(
            sweep_dataset, "rtf", store=SweepStore(tmp_path / "p.json"),
            workers=2, **kwargs,
        )
        np.testing.assert_array_equal(serial.grid, parallel.grid)
        assert (tmp_path / "s.json").read_bytes() == (
            tmp_path / "p.json"
        ).read_bytes()

    def test_run_sweep_failure_lands_in_errors_not_exception(
        self, sweep_dataset
    ):
        result = run_sweep(
            sweep_dataset, "not-an-attack", batch_sizes=(3,),
            neuron_counts=(32,), num_trials=1,
        )
        assert np.isnan(result.grid[0, 0])
        # The registry's unknown-name error (a ValueError subclass).
        assert result.errors[(32, 3)]["type"] == "UnknownAttackError"
        # An all-NaN column yields no optimum rather than a NaN winner.
        assert result.optima == {}

    def test_optima_ignore_nan_cells(self):
        from repro.experiments import SweepResult

        result = SweepResult(
            attack="rtf", dataset="d", batch_sizes=(3,),
            neuron_counts=(24, 32), grid=np.array([[np.nan], [7.0]]),
        )
        result.compute_optima()
        assert result.optima[3] == (32, 7.0)

    def test_run_defense_lineup_parallel_matches_serial(
        self, sweep_dataset, tmp_path
    ):
        serial = run_defense_lineup(
            sweep_dataset, "rtf", 3, 32, ("WO", "MR"), num_trials=1,
            store=SweepStore(tmp_path / "s.json"),
        )
        parallel = run_defense_lineup(
            sweep_dataset, "rtf", 3, 32, ("WO", "MR"), num_trials=1,
            store=SweepStore(tmp_path / "p.json"), workers=2,
        )
        assert list(serial.distributions) == list(parallel.distributions)
        for name in serial.distributions:
            np.testing.assert_array_equal(
                serial.distributions[name], parallel.distributions[name]
            )

    def test_run_defense_lineup_failed_arm_recorded(self, sweep_dataset):
        result = run_defense_lineup(
            sweep_dataset, "rtf", 3, 32, ("WO", "bogus-suite"), num_trials=1,
        )
        assert len(result.distributions["WO"]) > 0
        assert len(result.distributions["bogus-suite"]) == 0
        # Registry-backed resolution: the typo'd arm fails with the
        # name-listing UnknownDefenseError, not an opaque KeyError.
        assert result.errors["bogus-suite"]["type"] == "UnknownDefenseError"
        assert "registered defenses" in result.errors["bogus-suite"]["message"]
        assert "bogus-suite" in result.to_table()


class TestOutcomeEdgeCases:
    """Previously-untested paths: empty grids, single cells, failed cells."""

    def test_empty_outcome_headline_vacuously_false(self):
        assert headline_ordering_holds(SweepOutcome()) is False

    def test_empty_outcome_mean_psnr_raises_keyerror(self):
        with pytest.raises(KeyError, match="rtf|WO|full"):
            SweepOutcome().mean_psnr("rtf", "WO", "full")

    def test_single_cell_grid_has_no_headline_pair(self, sweep_dataset):
        outcome = make_runner(sweep_dataset, defenses=("WO",)).run()
        assert len(outcome.results) == 1
        assert headline_ordering_holds(outcome) is False
        assert outcome.mean_psnr("rtf", "WO", "full") > 0.0

    def test_error_cell_mean_psnr_raises_valueerror(self):
        outcome = SweepOutcome(
            results={
                "rtf|MR|full": {
                    "attack": "rtf",
                    "defense": "MR",
                    "scenario": "full",
                    "error": {"type": "KeyError", "message": "boom",
                              "traceback": ""},
                }
            },
            failed=["rtf|MR|full"],
        )
        with pytest.raises(ValueError, match="rtf\\|MR\\|full.*KeyError"):
            outcome.mean_psnr("rtf", "MR", "full")

    def test_error_cell_skipped_by_headline_and_rendered_as_err(
        self, sweep_dataset
    ):
        # A typo'd arm now fails fast at construction (see
        # test_unknown_defense_fails_fast in test_sweep_defenses.py), so a
        # mid-run failure needs an arm that validates but dies per cell:
        # the tabular defense rejects 4-D image batches at process_batch.
        outcome = make_runner(
            sweep_dataset, defenses=("WO", "MR", "tabular")
        ).run()
        # The tabular arm fails; the WO/MR pair still decides the headline.
        assert headline_ordering_holds(outcome) is True
        assert headline_ordering_holds(outcome, defended="tabular") is False
        assert "ERR" in outcome.to_table()

    def test_missing_pair_is_vacuously_false(self, sweep_dataset):
        # Cells exist for the attack but not the requested defense pair.
        outcome = make_runner(sweep_dataset, defenses=("WO", "MR")).run()
        assert headline_ordering_holds(outcome, defended="SH") is False


@pytest.mark.sweep_scale
class TestFullGrid:
    """The acceptance-scale grid; gated like other scale tests."""

    def test_acceptance_grid(self, cifar_like, tmp_path):
        # >= 2 attacks x >= 3 suites x >= 2 participation scenarios.
        kwargs = dict(
            attacks=("rtf", "cah"),
            defenses=("WO", "MR", "SH", "MR+SH"),
            scenarios=DEFAULT_SCENARIOS[:3],
            batch_size=4,
            num_neurons=64,
            public_size=100,
            seed=0,
        )
        path = tmp_path / "grid.json"
        outcome = SweepRunner(cifar_like, store=path, **kwargs).run()
        assert len(outcome.results) == 24
        assert headline_ordering_holds(outcome)
        assert headline_ordering_holds(outcome, attack="cah", defended="MR+SH")

        resumed = SweepRunner(cifar_like, store=path, **kwargs).run()
        assert resumed.computed == []
        assert resumed.results == outcome.results
