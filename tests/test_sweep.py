"""Sweep engine: grid enumeration, cell evaluation, resumable store."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data import make_synthetic_dataset
from repro.experiments import (
    DEFAULT_SCENARIOS,
    ParticipationScenario,
    SweepCell,
    SweepRunner,
    SweepStore,
    headline_ordering_holds,
    run_defense_lineup,
    run_sweep,
    scenario_from_dict,
    scenario_to_dict,
)


@pytest.fixture(scope="module")
def sweep_dataset():
    return make_synthetic_dataset(4, 12, image_size=8, seed=3, name="sweep")


def make_runner(dataset, store=None, **overrides):
    kwargs = dict(
        attacks=("rtf",),
        defenses=("WO", "MR"),
        scenarios=(ParticipationScenario("full", num_clients=2),),
        batch_size=3,
        num_neurons=48,
        public_size=48,
        seed=0,
        store=store,
    )
    kwargs.update(overrides)
    return SweepRunner(dataset, **kwargs)


class TestScenario:
    def test_lowers_to_federation_config(self):
        scenario = ParticipationScenario(
            "s", num_clients=8, clients_per_round=4, dropout_rate=0.1,
            partition="dirichlet", dirichlet_alpha=0.2,
        )
        config = scenario.to_config(batch_size=6, seed=7)
        assert config.num_clients == 8
        assert config.clients_per_round == 4
        assert config.dropout_rate == 0.1
        assert config.partition == "dirichlet"
        assert config.batch_size == 6
        assert config.seed == 7

    def test_round_trips_through_dict(self):
        for scenario in DEFAULT_SCENARIOS:
            assert scenario_from_dict(scenario_to_dict(scenario)) == scenario

    def test_duplicate_names_rejected(self, sweep_dataset):
        with pytest.raises(ValueError):
            make_runner(
                sweep_dataset,
                scenarios=(
                    ParticipationScenario("dup"),
                    ParticipationScenario("dup", num_clients=4),
                ),
            )

    def test_empty_axis_rejected(self, sweep_dataset):
        with pytest.raises(ValueError):
            make_runner(sweep_dataset, attacks=())

    def test_duplicate_axis_entries_rejected(self, sweep_dataset):
        # A duplicated entry would make one cell land in both `computed`
        # and `cached` within a single run.
        with pytest.raises(ValueError, match="duplicate attacks"):
            make_runner(sweep_dataset, attacks=("rtf", "rtf"))
        with pytest.raises(ValueError, match="duplicate defenses"):
            make_runner(sweep_dataset, defenses=("WO", "MR", "WO"))


class TestSmokeSweep:
    """Tier-1-safe: a 2-cell sweep end to end, well under the 5s budget."""

    def test_two_cell_sweep_end_to_end(self, sweep_dataset):
        outcome = make_runner(sweep_dataset).run()
        assert len(outcome.results) == 2
        assert len(outcome.computed) == 2
        assert outcome.cached == []
        for result in outcome.results.values():
            assert result["num_reconstructions"] > 0
            assert result["num_scored"] > 0

    def test_headline_ordering_no_defense_beats_mr(self, sweep_dataset):
        # The acceptance shape: (RTF, no defense) PSNR > (RTF, MR).
        outcome = make_runner(sweep_dataset).run()
        assert headline_ordering_holds(outcome)
        assert outcome.mean_psnr("rtf", "WO", "full") > 100.0
        assert outcome.mean_psnr("rtf", "MR", "full") < 60.0

    def test_cells_enumerate_deterministically(self, sweep_dataset):
        runner = make_runner(sweep_dataset)
        assert runner.cells() == [
            SweepCell("rtf", "WO", "full"),
            SweepCell("rtf", "MR", "full"),
        ]

    def test_table_renders(self, sweep_dataset):
        outcome = make_runner(sweep_dataset).run()
        table = outcome.to_table()
        assert "rtf/full" in table
        assert "WO" in table and "MR" in table


class TestStoreResume:
    def test_resume_skips_finished_cells(self, sweep_dataset, tmp_path):
        path = tmp_path / "sweep.json"
        first = make_runner(sweep_dataset, store=path).run()
        assert len(first.computed) == 2

        resumed_store = SweepStore(path)
        resumed = make_runner(sweep_dataset, store=resumed_store).run()
        assert resumed.computed == []
        assert sorted(resumed.cached) == sorted(first.results)
        assert resumed.results == first.results
        assert resumed_store.hits == 2

    def test_partial_resume_computes_only_missing(self, sweep_dataset, tmp_path):
        path = tmp_path / "sweep.json"
        first = make_runner(sweep_dataset, store=path).run()
        # Widen the grid: the old cells come from cache, the new one runs.
        wider = make_runner(
            sweep_dataset, store=path, defenses=("WO", "MR", "HFlip")
        ).run()
        assert sorted(wider.cached) == sorted(first.results)
        assert wider.computed == [SweepCell("rtf", "HFlip", "full").key]

    def test_different_config_never_served_from_cache(self, sweep_dataset, tmp_path):
        # A reused store file must not hand one configuration's PSNRs to
        # another: the store key fingerprints batch size, neuron count,
        # seed, dataset, and the scenario's parameters — not just names.
        path = tmp_path / "sweep.json"
        make_runner(sweep_dataset, store=path).run()
        rebatched = make_runner(sweep_dataset, store=path, batch_size=2).run()
        assert len(rebatched.computed) == 2 and rebatched.cached == []
        renamed_scenario = make_runner(
            sweep_dataset, store=path,
            scenarios=(ParticipationScenario("full", num_clients=4),),
        ).run()
        assert len(renamed_scenario.computed) == 2
        assert renamed_scenario.cached == []

    def test_same_name_different_dataset_not_served(self, sweep_dataset, tmp_path):
        # The fingerprint covers dataset *content*: a regenerated dataset
        # under the same name must not inherit the old dataset's cells.
        path = tmp_path / "sweep.json"
        make_runner(sweep_dataset, store=path).run()
        lookalike = make_synthetic_dataset(
            4, 12, image_size=8, seed=99, name="sweep"
        )
        rerun = make_runner(lookalike, store=path).run()
        assert len(rerun.computed) == 2 and rerun.cached == []

    def test_store_survives_corrupt_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text("{not json")
        store = SweepStore(path)
        assert len(store) == 0
        store.put("cell", {"mean_psnr": 1.0})
        assert json.loads(path.read_text())["cells"]["cell"]["mean_psnr"] == 1.0

    def test_memory_store_counts_hits_and_misses(self):
        store = SweepStore()
        assert store.get("missing") is None
        store.put("key", 3.0)
        assert store.get("key") == 3.0
        assert store.misses == 1
        assert store.hits == 1


class TestHarnessesShareStore:
    def test_run_sweep_resumes_from_store(self, sweep_dataset, tmp_path):
        store = SweepStore(tmp_path / "fig3.json")
        first = run_sweep(
            sweep_dataset, "rtf", batch_sizes=(3,), neuron_counts=(32,),
            num_trials=1, store=store,
        )
        assert store.misses == 1
        again = run_sweep(
            sweep_dataset, "rtf", batch_sizes=(3,), neuron_counts=(32,),
            num_trials=1, store=SweepStore(tmp_path / "fig3.json"),
        )
        np.testing.assert_array_equal(first.grid, again.grid)

    def test_run_defense_lineup_resumes_from_store(self, sweep_dataset, tmp_path):
        store = SweepStore(tmp_path / "fig5.json")
        first = run_defense_lineup(
            sweep_dataset, "rtf", 3, 32, ("WO", "MR"), num_trials=1,
            store=store,
        )
        resumed_store = SweepStore(tmp_path / "fig5.json")
        again = run_defense_lineup(
            sweep_dataset, "rtf", 3, 32, ("WO", "MR"), num_trials=1,
            store=resumed_store,
        )
        assert resumed_store.hits == 2
        for name in ("WO", "MR"):
            np.testing.assert_array_equal(
                first.distributions[name], again.distributions[name]
            )


@pytest.mark.sweep_scale
class TestFullGrid:
    """The acceptance-scale grid; gated like other scale tests."""

    def test_acceptance_grid(self, cifar_like, tmp_path):
        # >= 2 attacks x >= 3 suites x >= 2 participation scenarios.
        kwargs = dict(
            attacks=("rtf", "cah"),
            defenses=("WO", "MR", "SH", "MR+SH"),
            scenarios=DEFAULT_SCENARIOS[:3],
            batch_size=4,
            num_neurons=64,
            public_size=100,
            seed=0,
        )
        path = tmp_path / "grid.json"
        outcome = SweepRunner(cifar_like, store=path, **kwargs).run()
        assert len(outcome.results) == 24
        assert headline_ordering_holds(outcome)
        assert headline_ordering_holds(outcome, attack="cah", defended="MR+SH")

        resumed = SweepRunner(cifar_like, store=path, **kwargs).run()
        assert resumed.computed == []
        assert resumed.results == outcome.results
