"""Fused-vs-reference byte-identity: the acceleration's hard contract.

The fused kernels (PR 10) promise more than numerical closeness: every
fused op replays the reference graph's float64 op order and backward
accumulation order exactly, so switching kernel modes changes *nothing*
about the computed bits.  That is what lets the fused core ship without
regenerating the golden sweep grids.  This suite enforces the contract at
every level:

- per-op forward/backward bitwise equality for each fused kernel,
- full model forward/backward and optimizer trajectories over many steps,
- the aliasing hazards the in-place accumulate must survive (two parents
  borrowing one ``out.grad``; a parameter reused twice in one graph),
- the memory-layout clause: gradients leaving the core are C-contiguous,
  because downstream full-array reductions (gradient clipping) flatten in
  memory order — handing out a transpose view changed two golden cells by
  one ulp before this was pinned down,
- an end-to-end sweep cell, fused vs reference, compared ``==`` on the
  result dict.

Bitwise equality throughout: ``assert_array_equal`` (plus dtype checks),
never ``allclose``.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.tensor.backend as backend
from repro.fl.gradients import (
    clip_gradient_dict,
    compute_batch_gradients,
    per_sample_gradients,
)
from repro.nn import MLP, SGD, Adam, CrossEntropyLoss, Linear, MSELoss
from repro.nn.resnet import small_cnn
from repro.tensor import (
    Tensor,
    avg_pool2d,
    batch_norm,
    conv2d,
    max_pool2d,
    reference_kernels,
)


def bitwise_equal(a: np.ndarray, b: np.ndarray) -> None:
    assert a.dtype == b.dtype
    assert a.shape == b.shape
    np.testing.assert_array_equal(a, b)


def run_both(build):
    """Run ``build()`` under fused and reference kernels; return both."""
    assert backend.FUSED, "suite assumes the fused default"
    fused_result = build()
    with reference_kernels():
        reference_result = build()
    return fused_result, reference_result


def grad_through(build_graph, *points):
    """Backward a scalar graph; return (value bits, each point's grad)."""
    tensors = [Tensor(p.copy(), requires_grad=True) for p in points]
    loss = build_graph(*tensors)
    loss.backward()
    return (loss.data.copy(), [t.grad.copy() for t in tensors])


RNG_SEED = 20240


def _rng():
    return np.random.default_rng(RNG_SEED)


# ---------------------------------------------------------------------------
# Per-op equivalence
# ---------------------------------------------------------------------------


OP_GRAPHS = {
    "sub": (lambda a, b: (a - b).sum(), ((3, 4), (3, 4))),
    "sub_broadcast": (lambda a, b: ((a - b) * a).sum(), ((3, 1), (3, 4))),
    "rsub": (lambda a: ((2.5 - a) * a).sum(), ((2, 5),)),
    "mean": (lambda a: a.mean(), ((4, 6),)),
    "mean_axis": (lambda a: (a.mean(axis=1) * a.mean(axis=0).sum()).sum(), ((4, 6),)),
    "var": (lambda a: a.var(), ((4, 6),)),
    "var_axis": (lambda a: (a.var(axis=0, keepdims=True) * a).sum(), ((4, 6),)),
    "shared_out_grad": (lambda a: (a + a).sum(), ((5,),)),
    "param_reused": (lambda a, b: ((a * b) + (a - b)).sum(), ((3, 3), (3, 3))),
}


@pytest.mark.parametrize("name", sorted(OP_GRAPHS), ids=sorted(OP_GRAPHS))
def test_op_bitwise_equivalence(name):
    graph, shapes = OP_GRAPHS[name]
    points = [_rng().standard_normal(s) for s in shapes]

    (value_f, grads_f), (value_r, grads_r) = run_both(
        lambda: grad_through(graph, *points)
    )
    bitwise_equal(np.asarray(value_f), np.asarray(value_r))
    for gf, gr in zip(grads_f, grads_r):
        bitwise_equal(gf, gr)


@pytest.mark.parametrize("reduction", ["mean", "sum"])
def test_cross_entropy_bitwise_equivalence(reduction):
    logits = _rng().standard_normal((6, 5))
    labels = np.array([0, 4, 2, 2, 1, 3])

    def build():
        return grad_through(
            lambda t: CrossEntropyLoss(reduction=reduction)(t, labels), logits
        )

    (value_f, grads_f), (value_r, grads_r) = run_both(build)
    bitwise_equal(np.asarray(value_f), np.asarray(value_r))
    bitwise_equal(grads_f[0], grads_r[0])


def test_linear_layer_bitwise_equivalence():
    x = _rng().standard_normal((7, 5))

    def build():
        layer = Linear(5, 3, rng=np.random.default_rng(3))
        out = layer(Tensor(x, requires_grad=True)).sum()
        out.backward()
        return (
            out.data.copy(),
            layer.weight.grad.copy(),
            layer.bias.grad.copy(),
        )

    fused_result, reference_result = run_both(build)
    for f, r in zip(fused_result, reference_result):
        bitwise_equal(np.asarray(f), np.asarray(r))


@pytest.mark.parametrize(
    "op",
    ["conv", "conv_stride_pad", "max_pool", "avg_pool", "bn"],
)
def test_conv_family_bitwise_equivalence(op):
    rng = _rng()
    x = rng.standard_normal((2, 3, 6, 6))
    w = rng.standard_normal((4, 3, 3, 3)) * 0.3
    b = rng.standard_normal(4) * 0.1
    gamma, beta = rng.uniform(0.5, 1.5, 3), rng.standard_normal(3) * 0.1

    def graph(t):
        if op == "conv":
            return conv2d(t, Tensor(w), Tensor(b)).sum()
        if op == "conv_stride_pad":
            return conv2d(t, Tensor(w), None, stride=2, padding=1).sum()
        if op == "max_pool":
            return max_pool2d(t, 2).sum()
        if op == "avg_pool":
            return avg_pool2d(t, 3, stride=1).sum()
        return batch_norm(
            t, Tensor(gamma), Tensor(beta), np.zeros(3), np.ones(3),
            training=True,
        ).sum()

    (value_f, grads_f), (value_r, grads_r) = run_both(
        lambda: grad_through(graph, x)
    )
    bitwise_equal(np.asarray(value_f), np.asarray(value_r))
    bitwise_equal(grads_f[0], grads_r[0])


def test_conv2d_weight_grads_bitwise_equivalence():
    rng = _rng()
    x = Tensor(rng.standard_normal((2, 2, 5, 5)))
    w = rng.standard_normal((3, 2, 3, 3)) * 0.3
    b = rng.standard_normal(3) * 0.1

    def build():
        wt = Tensor(w.copy(), requires_grad=True)
        bt = Tensor(b.copy(), requires_grad=True)
        conv2d(x, wt, bt, padding=1).sum().backward()
        return wt.grad.copy(), bt.grad.copy()

    (wf, bf), (wr, br) = run_both(build)
    bitwise_equal(wf, wr)
    bitwise_equal(bf, br)


# ---------------------------------------------------------------------------
# Whole-model and optimizer trajectories
# ---------------------------------------------------------------------------


def _mlp_batch():
    rng = _rng()
    images = rng.standard_normal((6, 12))
    labels = rng.integers(0, 4, size=6)
    return images, labels


def test_model_gradients_bitwise_equivalence():
    images, labels = _mlp_batch()

    def build():
        model = MLP([12, 10, 4], rng=np.random.default_rng(11))
        grads, loss = compute_batch_gradients(
            model, CrossEntropyLoss(), images, labels
        )
        return grads, loss

    (grads_f, loss_f), (grads_r, loss_r) = run_both(build)
    assert loss_f == loss_r
    assert set(grads_f) == set(grads_r)
    for name in sorted(grads_f):
        bitwise_equal(grads_f[name], grads_r[name])


def test_cnn_gradients_bitwise_equivalence():
    rng = _rng()
    images = rng.standard_normal((2, 3, 8, 8))
    labels = rng.integers(0, 4, size=2)

    def build():
        model = small_cnn(4, width=4, rng=np.random.default_rng(13))
        return compute_batch_gradients(model, CrossEntropyLoss(), images, labels)

    (grads_f, loss_f), (grads_r, loss_r) = run_both(build)
    assert loss_f == loss_r
    for name in sorted(grads_f):
        bitwise_equal(grads_f[name], grads_r[name])


@pytest.mark.parametrize(
    "make_optimizer",
    [
        lambda params: SGD(params, lr=0.05),
        lambda params: SGD(params, lr=0.05, momentum=0.9, weight_decay=1e-3),
        lambda params: Adam(params, lr=0.01),
        lambda params: Adam(params, lr=0.01, weight_decay=1e-3),
    ],
    ids=["sgd", "sgd_momentum_wd", "adam", "adam_wd"],
)
def test_training_trajectory_bitwise_equivalence(make_optimizer):
    """Ten full update steps: identical parameter bits at every step."""
    images, labels = _mlp_batch()

    def build():
        model = MLP([12, 10, 4], rng=np.random.default_rng(17))
        optimizer = make_optimizer(model.parameters())
        loss_fn = CrossEntropyLoss()
        snapshots = []
        for _ in range(10):
            model.zero_grad()
            loss = loss_fn(model(Tensor(images)), labels)
            loss.backward()
            optimizer.step()
            snapshots.append(model.state_dict())
        return snapshots

    fused_steps, reference_steps = run_both(build)
    for step_f, step_r in zip(fused_steps, reference_steps):
        for name in sorted(step_f):
            bitwise_equal(step_f[name], step_r[name])


def test_mid_graph_mode_switch_is_safe():
    """Both modes are value-identical, so switching between graphs is too."""
    images, labels = _mlp_batch()

    def once(seed):
        model = MLP([12, 10, 4], rng=np.random.default_rng(seed))
        grads, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), images, labels
        )
        return grads

    plain = once(23)
    with reference_kernels():
        pass  # enter and leave: the mode must restore to fused
    again = once(23)
    for name in sorted(plain):
        bitwise_equal(plain[name], again[name])


# ---------------------------------------------------------------------------
# The memory-layout clause and the dpsgd clipping path
# ---------------------------------------------------------------------------


def test_transferred_gradients_are_c_contiguous():
    """Grads leaving the core must be C-contiguous owned arrays.

    Regression for the one-ulp golden drift: the fused Linear backward
    computes the weight gradient as ``(x.T @ g).T``; transferring that
    *view* out of ``grad_dict`` changed the flattening order of
    ``np.sum(g ** 2)`` in the clipping path.
    """
    images, labels = _mlp_batch()
    model = MLP([12, 10, 4], rng=np.random.default_rng(29))
    grads, _ = compute_batch_gradients(model, CrossEntropyLoss(), images, labels)
    for name in sorted(grads):
        assert grads[name].flags["C_CONTIGUOUS"], name
        assert grads[name].base is None, name


def test_clipped_per_sample_path_bitwise_equivalence():
    """The exact pipeline behind the dpsgd golden cells, fused vs reference."""
    images, labels = _mlp_batch()

    def build():
        model = MLP([12, 10, 4], rng=np.random.default_rng(31))
        per_sample = per_sample_gradients(
            model, CrossEntropyLoss(), images, labels
        )
        return [clip_gradient_dict(grads, 1.0) for grads in per_sample]

    fused_clipped, reference_clipped = run_both(build)
    for clipped_f, clipped_r in zip(fused_clipped, reference_clipped):
        for name in sorted(clipped_f):
            bitwise_equal(clipped_f[name], clipped_r[name])


# ---------------------------------------------------------------------------
# End to end: one sweep cell
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("cell_spec", ["rtfxWO", "linearxdpsgd"])
def test_sweep_cell_bitwise_equivalence(cell_spec):
    from repro.experiments.sweep import GRID_PRESETS

    attack, _, defense = cell_spec.partition("x")

    def build():
        runner = GRID_PRESETS["smoke"](
            0, 1, None, attacks=(attack,), defenses=(defense,)
        )
        (cell,) = runner.cells()
        return runner.run_cell(cell)

    fused_result, reference_result = run_both(build)
    assert fused_result == reference_result
