"""Buffer-pool semantics and the gradient ownership protocol.

The fused kernels' zero-allocation steady state rests on two pieces of
machinery: :class:`repro.tensor.buffers.BufferPool` (shape/dtype-keyed
free lists) and the ownership protocol in ``Tensor._accumulate`` /
``Module.grad_dict(transfer=True)`` (who may mutate a gradient array, and
when it returns to the pool).  Both have sharp edges — double-release,
pooling a view, mutating a borrowed grad — that would corrupt results
silently, so each rule gets a direct test here.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.tensor.backend as backend
import repro.tensor.buffers as buffers
from repro.nn import MLP, CrossEntropyLoss
from repro.tensor import Tensor
from repro.tensor.buffers import BufferPool


class TestBufferPool:
    def test_acquire_miss_then_hit(self):
        pool = BufferPool()
        first = pool.acquire((4, 3), np.float64)
        assert first.shape == (4, 3) and first.dtype == np.float64
        assert pool.release(first)
        second = pool.acquire((4, 3), np.float64)
        assert second is first
        assert pool.stats() == {
            "hits": 1, "misses": 1, "free_arrays": 0, "free_keys": 1,
        }

    def test_keyed_by_shape_and_dtype(self):
        pool = BufferPool()
        arr = pool.acquire((4, 3), np.float64)
        pool.release(arr)
        assert pool.acquire((3, 4), np.float64) is not arr
        assert pool.acquire((4, 3), np.float32) is not arr
        assert pool.acquire((4, 3), np.float64) is arr

    def test_views_and_noncontiguous_rejected(self):
        pool = BufferPool()
        owner = np.zeros((4, 4))
        assert not pool.release(owner[:2])
        assert not pool.release(owner.T)
        assert not pool.release(np.zeros((4, 3), order="F"))

    def test_readonly_rejected(self):
        pool = BufferPool()
        arr = np.zeros((2, 2))
        arr.flags.writeable = False
        assert not pool.release(arr)

    def test_double_release_rejected(self):
        pool = BufferPool()
        arr = pool.acquire((2, 2), np.float64)
        assert pool.release(arr)
        assert not pool.release(arr)
        assert pool.stats()["free_arrays"] == 1

    def test_per_key_cap(self):
        pool = BufferPool(max_per_key=2)
        arrays = [np.zeros((3,)) for _ in range(4)]
        outcomes = [pool.release(arr) for arr in arrays]
        assert outcomes == [True, True, False, False]
        assert pool.stats()["free_arrays"] == 2

    def test_clear(self):
        pool = BufferPool()
        arr = pool.acquire((2,), np.float64)
        pool.release(arr)
        pool.clear()
        assert pool.stats()["free_arrays"] == 0
        # After clear the old identity must be forgotten: re-releasing the
        # same (now unpooled) array is legitimate again.
        assert pool.release(arr)


class TestOwnershipProtocol:
    """``_accumulate`` / ``zero_grad`` / ``grad_dict`` gradient lifecycle."""

    def setup_method(self):
        assert backend.FUSED, "protocol tests exercise the fused path"

    def test_borrowed_grad_not_mutated_by_second_contribution(self):
        """A shared out.grad array must never be accumulated into in place."""
        x = Tensor(np.ones(4), requires_grad=True)
        out = x + x  # both contributions borrow out.grad
        seed = np.ones(4)
        out.backward(seed)
        np.testing.assert_array_equal(x.grad, np.full(4, 2.0))
        # The seed array was borrowed, never accumulated into.
        np.testing.assert_array_equal(seed, np.ones(4))

    def test_param_reused_across_ops(self):
        a = Tensor(np.arange(3.0), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        ((a * b) + (a - b)).sum().backward()
        np.testing.assert_array_equal(a.grad, np.full(3, 2.0))  # b + 1
        np.testing.assert_array_equal(b.grad, np.arange(3.0) - 1.0)

    def test_zero_grad_releases_owned_buffer_for_reuse(self):
        buffers.clear()
        model = MLP([6, 5, 3], rng=np.random.default_rng(0))
        images = np.random.default_rng(1).standard_normal((4, 6))
        labels = np.array([0, 1, 2, 0])
        loss_fn = CrossEntropyLoss()

        loss_fn(model(Tensor(images)), labels).backward()
        owned = [p.grad for p in model.parameters() if p._grad_owned]
        assert owned, "fused backward should produce owned gradients"
        before = buffers.stats()["free_arrays"]
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())
        assert buffers.stats()["free_arrays"] > before

    def test_grad_dict_transfer_moves_ownership(self):
        model = MLP([6, 5, 3], rng=np.random.default_rng(0))
        images = np.random.default_rng(1).standard_normal((4, 6))
        labels = np.array([0, 1, 2, 0])
        loss_fn = CrossEntropyLoss()

        loss_fn(model(Tensor(images)), labels).backward()
        owned_arrays = {
            name: param.grad
            for name, param in model.named_parameters()
            if param._grad_owned
        }
        grads = model.grad_dict(transfer=True)
        for name, arr in owned_arrays.items():
            assert grads[name] is arr  # moved, not copied
        for param in model.parameters():
            assert param.grad is None or not param._grad_owned

    def test_grad_dict_copy_mode_leaves_grads_in_place(self):
        model = MLP([6, 5, 3], rng=np.random.default_rng(0))
        images = np.random.default_rng(1).standard_normal((4, 6))
        labels = np.array([0, 1, 2, 0])
        loss_fn = CrossEntropyLoss()

        loss_fn(model(Tensor(images)), labels).backward()
        grads = model.grad_dict()
        for name, param in model.named_parameters():
            assert param.grad is not None
            assert grads[name] is not param.grad
            np.testing.assert_array_equal(grads[name], param.grad)

    def test_transferred_grads_survive_next_backward(self):
        """Arrays handed out by transfer are never recycled underneath
        the caller by the following round's backward/zero_grad."""
        model = MLP([6, 5, 3], rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        loss_fn = CrossEntropyLoss()
        labels = np.array([0, 1, 2, 0])

        def round_grads():
            model.zero_grad()
            images = rng.standard_normal((4, 6))
            loss_fn(model(Tensor(images)), labels).backward()
            return model.grad_dict(transfer=True)

        first = round_grads()
        snapshot = {name: arr.copy() for name, arr in first.items()}
        round_grads()  # second round reuses pooled buffers freely
        for name in sorted(first):
            np.testing.assert_array_equal(first[name], snapshot[name])

    def test_steady_state_reuses_buffers(self):
        buffers.clear()
        model = MLP([6, 5, 3], rng=np.random.default_rng(0))
        images = np.random.default_rng(1).standard_normal((4, 6))
        labels = np.array([0, 1, 2, 0])
        loss_fn = CrossEntropyLoss()

        for _ in range(3):
            model.zero_grad()
            loss_fn(model(Tensor(images)), labels).backward()
        assert buffers.stats()["hits"] > 0
