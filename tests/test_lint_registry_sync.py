"""Tier-1 mirror of the ``registry-knob-sync`` lint rule.

The registries declare each entry's knobs so sweeps can validate
configuration up front; this suite proves every declaration still
round-trips its constructor — ``make_attack``/``make_defense`` with *all*
declared knobs at their defaults must build — so a knob rename fails here
(and in the lint run) instead of one cell deep into a sweep.
"""

from __future__ import annotations

import pytest

from repro.attacks.registry import (
    AttackKnob,
    AttackSpec,
    attack_spec,
    available_attacks,
    make_attack,
    register_attack,
    unregister_attack,
)
from repro.defense.registry import (
    DefenseKnob,
    DefenseSpec,
    available_defenses,
    defense_spec,
    make_defense,
    register_defense,
    unregister_defense,
)
from repro.lint.rules.registry_sync import _check as knob_sync_check


class TestAttackKnobRoundTrip:
    @pytest.mark.parametrize("name", available_attacks())
    def test_spec_builds_with_declared_defaults(self, name):
        spec = attack_spec(name)
        knobs = {knob.name: knob.default for knob in spec.knobs}
        attack = make_attack(
            name, num_neurons=6, public_images=None, seed=0, **knobs
        )
        assert attack is not None

    @pytest.mark.parametrize("name", available_attacks())
    def test_knob_declarations_are_well_formed(self, name):
        spec = attack_spec(name)
        names = [knob.name for knob in spec.knobs]
        assert len(names) == len(set(names)), f"duplicate knobs on {name}"
        for knob in spec.knobs:
            assert knob.name.isidentifier()


class TestDefenseKnobRoundTrip:
    @pytest.mark.parametrize("name", available_defenses())
    def test_spec_builds_with_declared_defaults(self, name):
        spec = defense_spec(name)
        knobs = {knob.name: knob.default for knob in spec.knobs}
        defense = make_defense(name, **knobs)
        assert defense is not None

    @pytest.mark.parametrize("name", available_defenses())
    def test_knob_declarations_are_well_formed(self, name):
        spec = defense_spec(name)
        names = [knob.name for knob in spec.knobs]
        assert len(names) == len(set(names)), f"duplicate knobs on {name}"
        for knob in spec.knobs:
            assert knob.name.isidentifier()


class TestLintRuleMirrorsThisSuite:
    def test_rule_passes_on_committed_registries(self):
        assert list(knob_sync_check([])) == []

    def test_rule_catches_attack_knob_drift(self):
        """Register a spec whose declared knob the factory rejects."""

        def factory(num_neurons, public_images, seed, *, real_knob=1.0):
            raise AssertionError("must not be reached with a bogus knob")

        register_attack(AttackSpec(
            name="drifted_attack",
            factory=factory,
            knobs=(AttackKnob("renamed_knob", 1.0, "stale declaration"),),
        ))
        try:
            violations = list(knob_sync_check([]))
        finally:
            unregister_attack("drifted_attack")
        assert len(violations) == 1
        violation = violations[0]
        assert violation.rule == "registry-knob-sync"
        assert "drifted_attack" in violation.message
        assert violation.line > 0 and violation.hint

    def test_rule_catches_defense_knob_drift(self):
        def factory(*, real_knob=0.5):
            raise AssertionError("must not be reached with a bogus knob")

        register_defense(DefenseSpec(
            name="drifted_defense",
            factory=factory,
            knobs=(DefenseKnob("renamed_knob", 0.5, "stale declaration"),),
        ))
        try:
            violations = list(knob_sync_check([]))
        finally:
            unregister_defense("drifted_defense")
        assert len(violations) == 1
        violation = violations[0]
        assert violation.rule == "registry-knob-sync"
        assert "drifted_defense" in violation.message
