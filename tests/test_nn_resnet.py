"""ResNet topology, shapes, and trainability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, BasicBlock, CrossEntropyLoss, resnet18, small_cnn
from repro.tensor import Tensor, no_grad


class TestBasicBlock:
    def test_identity_shortcut_shape(self, rng):
        block = BasicBlock(8, 8, stride=1, rng=np.random.default_rng(0))
        out = block(Tensor(rng.standard_normal((2, 8, 8, 8))))
        assert out.shape == (2, 8, 8, 8)

    def test_projection_shortcut_shape(self, rng):
        block = BasicBlock(8, 16, stride=2, rng=np.random.default_rng(0))
        out = block(Tensor(rng.standard_normal((2, 8, 8, 8))))
        assert out.shape == (2, 16, 4, 4)

    def test_output_nonnegative(self, rng):
        # Final activation is ReLU.
        block = BasicBlock(4, 4, rng=np.random.default_rng(0))
        out = block(Tensor(rng.standard_normal((2, 4, 6, 6))))
        assert (out.numpy() >= 0.0).all()


class TestResNet18:
    def test_output_shape(self, rng):
        model = resnet18(10, base_width=8, rng=np.random.default_rng(0))
        out = model(Tensor(rng.standard_normal((3, 3, 32, 32))))
        assert out.shape == (3, 10)

    def test_full_width_parameter_count(self):
        # The canonical CIFAR ResNet-18 has ~11.2M parameters.
        model = resnet18(100, base_width=64, rng=np.random.default_rng(0))
        count = model.num_parameters()
        assert 10_500_000 < count < 11_500_000

    def test_block_structure(self):
        model = resnet18(10, base_width=8, rng=np.random.default_rng(0))
        stage_sizes = [len(stage) for stage in model.stages]
        assert stage_sizes == [2, 2, 2, 2]

    def test_gradients_reach_stem(self, rng):
        model = resnet18(5, base_width=4, rng=np.random.default_rng(0))
        loss = CrossEntropyLoss()(
            model(Tensor(rng.standard_normal((2, 3, 16, 16)))), np.array([0, 1])
        )
        loss.backward()
        assert model.stem_conv.weight.grad is not None
        assert np.any(model.stem_conv.weight.grad != 0.0)

    def test_eval_mode_deterministic(self, rng):
        model = resnet18(5, base_width=4, rng=np.random.default_rng(0))
        model.eval()
        x = Tensor(rng.standard_normal((2, 3, 16, 16)))
        with no_grad():
            a = model(x).numpy()
            b = model(x).numpy()
        np.testing.assert_array_equal(a, b)

    def test_overfits_tiny_batch(self, rng):
        # A sanity check that the whole stack can actually learn.
        model = resnet18(4, base_width=4, rng=np.random.default_rng(0))
        x = rng.standard_normal((8, 3, 16, 16))
        y = np.arange(8) % 4
        opt = Adam(model.parameters(), lr=3e-3)
        loss_fn = CrossEntropyLoss()
        first = None
        for step in range(30):
            opt.zero_grad()
            loss = loss_fn(model(Tensor(x)), y)
            loss.backward()
            opt.step()
            if first is None:
                first = loss.item()
        assert loss.item() < first * 0.5


class TestSmallCNN:
    def test_shapes(self, rng):
        model = small_cnn(7, width=8, rng=np.random.default_rng(0))
        out = model(Tensor(rng.standard_normal((4, 3, 16, 16))))
        assert out.shape == (4, 7)

    def test_state_dict_roundtrip(self, rng):
        a = small_cnn(3, rng=np.random.default_rng(0))
        b = small_cnn(3, rng=np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        x = Tensor(rng.standard_normal((2, 3, 8, 8)))
        a.eval(), b.eval()
        with no_grad():
            np.testing.assert_allclose(a(x).numpy(), b(x).numpy())
