"""Legacy setup shim: enables editable installs without the wheel package."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "OASIS: Offsetting Active Reconstruction Attacks in Federated "
        "Learning (ICDCS 2024) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
